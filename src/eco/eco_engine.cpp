#include "eco/eco_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_set>

#include "core/flow.hpp"
#include "core/legalize_intercol.hpp"
#include "core/stage_scheduler.hpp"
#include "metrics/metrics.hpp"
#include "metrics/names.hpp"
#include "placer/dsp_baseline.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dsp {
namespace {

const std::vector<DesignGraphData>& no_training() {
  static const std::vector<DesignGraphData> empty;
  return empty;
}

std::string label(const char* family, const char* key, const std::string& value) {
  return std::string(family) + "{" + key + "=\"" + value + "\"}";
}

struct EcoMetrics {
  Counter& jobs;
  Counter& patched_stages;
  Counter& fallbacks;
  Counter& pinned;
};

EcoMetrics& eco_metrics() {
  static EcoMetrics m{
      global_metrics().counter(metric::kEcoJobs, "ECO re-placement jobs run"),
      global_metrics().counter(metric::kEcoPatchedStages,
                               "Stages an ECO job patched instead of rerunning"),
      global_metrics().counter(metric::kEcoRerunFallbacks,
                               "ECO jobs or stages that fell back to a full rerun"),
      global_metrics().counter(metric::kEcoSitesPinned,
                               "Datapath DSPs ECO jobs kept pinned at their base site")};
  return m;
}

void count_element_action(const char* stage, bool patched) {
  global_metrics()
      .counter(label(patched ? metric::kElementEcoPatched : metric::kElementEcoRerun,
                     "element", stage),
               patched ? "ECO visits that patched this element's stage"
                       : "ECO visits that fully reran this element's stage")
      .inc();
}

/// Everything the ECO stage bodies share, precomputed in the prologue.
/// One plan per job; the scheduler's stage handoff orders every access.
struct EcoPlan {
  StageSnapshot snap;              // deepest usable base snapshot
  std::vector<CellId> base_id_of;  // per edited cell: base id or -1 (new cell)
  std::vector<char> is_datapath;   // edited netlist, chain closure applied
  DspGraph graph;                  // base graph remapped (valid when !rebuild_graph)
  bool rebuild_graph = false;      // edit touches DSP connectivity: rebuild via IDDFS
  std::vector<CellId> moving;      // edited datapath ids the MCF re-assigns
  std::vector<char> is_moving;     // per edited cell
  int pinned = 0;                  // datapath DSPs held at their base site
  bool dsp_place_fellback = false; // anchored legalization ran out of rows
};

/// The sum of a named counter over the stage-level children of the trace.
int trace_stage_counter(const RunTrace& trace, const char* stage, const char* counter) {
  int total = 0;
  for (const auto& child : trace.root().children) {
    if (child->name != stage) continue;
    for (const auto& [name, value] : child->counters)
      if (name == counter) total += static_cast<int>(value);
  }
  return total;
}

// ---- anchored legalization --------------------------------------------------
// Commits the moving groups' MCF sites while every already-assigned DSP
// (pinned datapath, mapped control) keeps its site. Greedy and
// deterministic: groups in (cy, first-cell) order each take the free
// contiguous run minimizing horizontal + vertical displacement from their
// MCF centroid. Returns false when some group fits in no column — the
// caller falls back to the full two-step legalization over all datapath
// DSPs.
bool anchored_legalize(FlowContext& ctx, const std::vector<CellId>& moving,
                       const std::vector<int>& mcf_sites) {
  const Netlist& nl = *ctx.nl;
  const Device& dev = *ctx.dev;

  // Occupancy from every DSP site currently held in the placement.
  const int num_cols = static_cast<int>(dev.dsp_columns().size());
  std::vector<std::vector<char>> occupied(static_cast<size_t>(num_cols));
  for (int j = 0; j < num_cols; ++j)
    occupied[static_cast<size_t>(j)].assign(
        static_cast<size_t>(dev.dsp_columns()[static_cast<size_t>(j)].num_sites), 0);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).type != CellType::kDsp) continue;
    const int site = ctx.placement.dsp_site(c);
    if (site < 0) continue;
    const DspSite& s = dev.dsp_site(site);
    occupied[static_cast<size_t>(s.column)][static_cast<size_t>(s.row)] = 1;
  }

  std::vector<DspGroup> groups = build_dsp_groups(nl, dev, moving, mcf_sites);
  std::vector<size_t> order(groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (groups[a].cy != groups[b].cy) return groups[a].cy < groups[b].cy;
    return groups[a].cells.front() < groups[b].cells.front();
  });

  for (size_t gi : order) {
    const DspGroup& g = groups[gi];
    const int len = g.size();
    int best_col = -1, best_start = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int j = 0; j < num_cols; ++j) {
      const auto& col = dev.dsp_columns()[static_cast<size_t>(j)];
      if (col.num_sites < len) continue;
      const auto& occ = occupied[static_cast<size_t>(j)];
      const double desired = g.cy - col.y0 - (len - 1) / 2.0;
      int free_run = 0;
      for (int row = 0; row < col.num_sites; ++row) {
        free_run = occ[static_cast<size_t>(row)] ? 0 : free_run + 1;
        if (free_run < len) continue;
        const int start = row - len + 1;
        const double cost =
            std::abs(col.x - g.cx) + std::abs(static_cast<double>(start) - desired);
        if (cost < best_cost) {
          best_cost = cost;
          best_col = j;
          best_start = start;
        }
      }
    }
    if (best_col < 0) return false;
    for (int k = 0; k < len; ++k) {
      ctx.placement.assign_dsp_site(dev, g.cells[static_cast<size_t>(k)],
                                    dev.dsp_site_index(best_col, best_start + k));
      occupied[static_cast<size_t>(best_col)][static_cast<size_t>(best_start + k)] = 1;
    }
  }
  return true;
}

// ---- ECO stage bodies -------------------------------------------------------

/// Prototype (patch): the base placement mapped by name; new cells seeded
/// at the centroid of their placed net neighbors (device center if fully
/// disconnected from mapped logic).
void eco_prototype(FlowContext& ctx, const std::shared_ptr<EcoPlan>& plan) {
  const Netlist& nl = *ctx.nl;
  const Device& dev = *ctx.dev;
  ctx.placement = Placement(nl, dev);
  std::vector<char> known(static_cast<size_t>(nl.num_cells()), 0);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    const CellId bid = plan->base_id_of[static_cast<size_t>(c)];
    if (cell.fixed) {
      ctx.placement.set(c, cell.fixed_x, cell.fixed_y);
      known[static_cast<size_t>(c)] = 1;
      continue;
    }
    if (bid < 0) continue;
    const int site =
        cell.type == CellType::kDsp ? plan->snap.placement.dsp_site(bid) : -1;
    if (site >= 0)
      ctx.placement.assign_dsp_site(dev, c, site);
    else
      ctx.placement.set(c, plan->snap.placement.x(bid), plan->snap.placement.y(bid));
    known[static_cast<size_t>(c)] = 1;
  }

  // New cells: centroid of known neighbors, two passes so new->new
  // connections resolve through cells seeded in the first pass.
  int seeded = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      if (known[static_cast<size_t>(c)]) continue;
      double sx = 0, sy = 0;
      int n = 0;
      auto absorb = [&](CellId other) {
        if (other == c || !known[static_cast<size_t>(other)]) return;
        sx += ctx.placement.x(other);
        sy += ctx.placement.y(other);
        ++n;
      };
      for (NetId net : nl.nets_driven_by(c))
        for (CellId s : nl.net(net).sinks) absorb(s);
      for (NetId net : nl.nets_sinking(c)) {
        absorb(nl.net(net).driver);
        for (CellId s : nl.net(net).sinks) absorb(s);
      }
      if (n == 0) continue;
      ctx.placement.set(c, dev.clamp_x(sx / n), dev.clamp_y(sy / n));
      known[static_cast<size_t>(c)] = 1;
      ++seeded;
    }
  }
  for (CellId c = 0; c < nl.num_cells(); ++c)
    if (!known[static_cast<size_t>(c)]) {
      ctx.placement.set(c, dev.clamp_x(dev.width() / 2.0), dev.clamp_y(dev.height() / 2.0));
      ++seeded;
    }
  ctx.trace.add_counter("eco_seeded_cells", seeded);
}

/// Extract (patch/rerun): roles are final in the plan; the DSP graph is the
/// base graph remapped by name, or rebuilt via the full IDDFS when the edit
/// touched DSP connectivity.
void eco_extract(FlowContext& ctx, const std::shared_ptr<EcoPlan>& plan) {
  const Netlist& nl = *ctx.nl;
  ctx.is_datapath = plan->is_datapath;
  if (plan->rebuild_graph) {
    DspGraph full =
        build_dsp_graph(nl, ctx.frozen_graph(), ctx.opts.dsp_graph, ctx.pool, ctx.cancel);
    if (ctx.cancel && ctx.cancel()) {
      ctx.error = "cancelled";
      ctx.trace.root().add_counter("cancelled", 1);
      return;
    }
    if (ctx.opts.prune_control) {
      ctx.dsp_graph = prune_dsp_graph(full, ctx.is_datapath);
    } else {
      ctx.dsp_graph = std::move(full);
      for (CellId c = 0; c < nl.num_cells(); ++c)
        if (nl.cell(c).type == CellType::kDsp) ctx.is_datapath[static_cast<size_t>(c)] = 1;
    }
    ctx.trace.add_counter("eco_graph_rebuilt", 1);
  } else {
    ctx.dsp_graph = plan->graph;
    ctx.trace.add_counter("eco_graph_remapped", 1);
  }
  ctx.datapath = ctx.dsp_graph.dsps;
  ctx.num_datapath_dsps = static_cast<int>(ctx.datapath.size());
  ctx.num_control_dsps = nl.count_type(CellType::kDsp) - ctx.num_datapath_dsps;
  ctx.dsp_graph_edges = ctx.dsp_graph.num_edges();
  ctx.trace.add_counter("nodes_visited", ctx.dsp_graph.nodes_visited);
  ctx.trace.add_counter("dsp_graph_edges", ctx.dsp_graph_edges);
  ctx.trace.add_counter("datapath_dsps", ctx.num_datapath_dsps);
  ctx.trace.add_counter("control_dsps", ctx.num_control_dsps);
}

/// DspPlace (patch): MCF over the moving set only — every pinned DSP in the
/// placement is a fixed attractor — then anchored legalization among the
/// free rows. Falls back to the full stage body when anchoring fails.
void eco_dsp_place(FlowContext& ctx, const std::shared_ptr<EcoPlan>& plan) {
  for (CellId c : ctx.datapath)
    if (plan->is_moving[static_cast<size_t>(c)]) ctx.placement.clear_dsp_site(c);
  ctx.trace.add_counter("eco_pinned", plan->pinned);
  ctx.trace.add_counter("eco_moving", static_cast<int64_t>(plan->moving.size()));
  if (plan->moving.empty()) return;

  AssignResult assign =
      mcf_assign_dsps(*ctx.nl, *ctx.dev, ctx.placement, ctx.dsp_graph, plan->moving,
                      ctx.opts.assign, ctx.pool, &ctx.mcf_warm);
  ctx.mcf_iterations = assign.iterations_run;
  ctx.mcf_converged = assign.converged;
  ctx.trace.add_counter("mcf_arcs", assign.arcs_built);
  ctx.trace.add_counter("mcf_iterations", assign.iterations_run);
  ctx.trace.root().add_counter("mcf_solves", assign.solves);
  ctx.trace.root().add_counter("mcf_warm_starts", assign.warm_starts);
  ctx.trace.root().add_counter("mcf_priced_arcs", assign.priced_arcs);

  if (!anchored_legalize(ctx, plan->moving, assign.site)) {
    // Out of contiguous rows near the targets: give the whole datapath to
    // the standard two-step legalization (moves pinned DSPs too — honest
    // rerun, tallied as such).
    plan->dsp_place_fellback = true;
    ctx.trace.add_counter("eco_anchor_fallback", 1);
    stage_dsp_place(ctx);
  }
}

/// Replace (patch): mapped control DSPs keep their base sites; only new or
/// displaced ones go through the baseline. The host's full non-DSP re-place
/// is skipped — non-DSP logic keeps its mapped base coordinates.
void eco_replace(FlowContext& ctx) {
  DspBaselineOptions ctrl;
  ctrl.mode = DspBaselineMode::kVivadoLike;
  ctrl.only_unassigned = true;
  if (!legalize_dsps_baseline(*ctx.nl, *ctx.dev, ctx.placement, ctrl))
    ctx.error = "legalization infeasible";
}

// ---- fallback ---------------------------------------------------------------

DsplacerResult run_standard(const Netlist& edited, const Device& dev,
                            const DsplacerOptions& opts, const EcoOptions& eco,
                            StageScheduler* scheduler, ThreadPool* pool,
                            int* restored) {
  FlowContext ctx(edited, dev, no_training(), opts, pool);
  ctx.cancel = eco.cancel;
  const std::vector<FlowStage> stages = dsplacer_pipeline(opts);
  DsplacerResult res =
      scheduler ? scheduler->run(ctx, stages) : run_flow_sequential(ctx, stages);
  if (restored) {
    *restored = 0;
    for (const auto& child : res.trace.root().children)
      for (const auto& [name, value] : child->counters)
        if (name == "cache_hit") *restored += static_cast<int>(value);
  }
  return res;
}

}  // namespace

EcoResult run_eco(const Netlist& base, const Netlist& edited, const NetlistEdit& edit,
                  const Device& dev, const DsplacerOptions& opts, const EcoOptions& eco,
                  StageScheduler* scheduler, ThreadPool* pool) {
  EcoResult out;
  eco_metrics().jobs.inc();

  // Empty edit: the edited netlist IS the base netlist, so the standard
  // pipeline on the unsalted namespace is the answer — bit-identical to a
  // warm full run, same placement, same checkpoint keys.
  if (edit.empty()) {
    out.result = run_standard(edited, dev, opts, eco, scheduler, pool, &out.stages_restored);
    out.stages_rerun =
        static_cast<int>(dsplacer_pipeline(opts).size()) - out.stages_restored;
    return out;
  }

  auto fall_back = [&](const std::string& reason) {
    LOG_WARN("eco", "falling back to full rerun: %s", reason.c_str());
    eco_metrics().fallbacks.inc();
    out.fell_back = true;
    out.fallback_reason = reason;
    out.result = run_standard(edited, dev, opts, eco, scheduler, pool, &out.stages_restored);
    out.stages_rerun =
        static_cast<int>(dsplacer_pipeline(opts).size()) - out.stages_restored;
    return out;
  };

  // ---- locate the deepest usable base snapshot ------------------------------
  FlowContext base_ctx(base, dev, no_training(), opts, pool);
  if (!base_ctx.cache.enabled()) return fall_back("no cache directory");
  const uint64_t base_root = flow_base_key(base_ctx);
  uint64_t key = base_root;
  struct KeyedStage {
    const char* name;
    uint64_t key;
  };
  std::vector<KeyedStage> base_chain;
  for (const FlowStage& s : dsplacer_pipeline(opts)) {
    key = chain_stage_key(key, s.name, base_ctx);
    base_chain.push_back({s.name, key});
  }
  auto plan = std::make_shared<EcoPlan>();
  bool have_base = false;
  uint64_t base_snap_key = 0;
  for (auto it = base_chain.rbegin(); it != base_chain.rend(); ++it) {
    if (!base_ctx.cache.load(it->name, it->key, base, dev, &plan->snap).empty()) continue;
    if (plan->snap.is_datapath.empty()) break;  // pre-Extract snapshot: unusable
    have_base = true;
    base_snap_key = it->key;
    break;
  }
  if (!have_base) return fall_back("no usable base checkpoint (run the base job with caching)");

  // ---- name mapping and blast radius ----------------------------------------
  plan->base_id_of.assign(static_cast<size_t>(edited.num_cells()), kInvalidCell);
  for (CellId c = 0; c < edited.num_cells(); ++c)
    if (const auto bid = base.find_cell(edited.cell(c).name))
      plan->base_id_of[static_cast<size_t>(c)] = *bid;

  // Roles on the edited netlist: mapped cells inherit the base
  // classification; new DSPs use their declared role; then the cascade
  // chain closure of extract_finish.
  plan->is_datapath.assign(static_cast<size_t>(edited.num_cells()), 0);
  for (CellId c = 0; c < edited.num_cells(); ++c) {
    const CellId bid = plan->base_id_of[static_cast<size_t>(c)];
    if (bid >= 0)
      plan->is_datapath[static_cast<size_t>(c)] =
          plan->snap.is_datapath[static_cast<size_t>(bid)];
    else
      plan->is_datapath[static_cast<size_t>(c)] =
          edited.cell(c).type == CellType::kDsp &&
          edited.cell(c).role == DspRole::kDatapath;
  }
  for (int ci = 0; ci < edited.num_chains(); ++ci) {
    const auto& chain = edited.chain(ci).cells;
    const bool any = std::any_of(chain.begin(), chain.end(), [&](CellId c) {
      return plan->is_datapath[static_cast<size_t>(c)];
    });
    if (any)
      for (CellId c : chain) plan->is_datapath[static_cast<size_t>(c)] = 1;
  }

  const std::vector<std::string> touched_names = edit_touched_cells(base, edit);
  std::vector<char> touched(static_cast<size_t>(edited.num_cells()), 0);
  bool touches_dsp = false;
  for (const std::string& name : touched_names) {
    if (const auto id = edited.find_cell(name)) {
      touched[static_cast<size_t>(*id)] = 1;
      touches_dsp |= edited.cell(*id).type == CellType::kDsp;
    }
    if (const auto bid = base.find_cell(name))
      touches_dsp |= base.cell(*bid).type == CellType::kDsp;
  }
  plan->rebuild_graph =
      touches_dsp || !edit.add_chains.empty() || !edit.remove_chains.empty();

  // Remap the base DSP graph by name when the edit stays clear of DSP
  // connectivity (edge metrics through edited non-DSP logic may then be
  // stale by design — they only weight MCF attraction; docs/ECO.md).
  if (!plan->rebuild_graph) {
    plan->graph = plan->snap.dsp_graph;
    for (CellId& c : plan->graph.dsps) {
      const auto id = edited.find_cell(base.cell(c).name);
      if (!id) {
        plan->rebuild_graph = true;  // datapath DSP vanished without being "touched"
        break;
      }
      c = *id;
    }
  }

  // Moving set: touched datapath DSPs, new datapath DSPs, DSPs whose base
  // site is missing, expanded blast_hops over the DSP graph and closed over
  // cascade chains. Everything else stays pinned.
  std::vector<CellId> edited_datapath;
  for (CellId c = 0; c < edited.num_cells(); ++c)
    if (edited.cell(c).type == CellType::kDsp && plan->is_datapath[static_cast<size_t>(c)])
      edited_datapath.push_back(c);
  plan->is_moving.assign(static_cast<size_t>(edited.num_cells()), 0);
  for (CellId c : edited_datapath) {
    const CellId bid = plan->base_id_of[static_cast<size_t>(c)];
    if (touched[static_cast<size_t>(c)] || bid < 0 ||
        plan->snap.placement.dsp_site(bid) < 0)
      plan->is_moving[static_cast<size_t>(c)] = 1;
  }
  if (!plan->rebuild_graph && eco.blast_hops > 0) {
    // Hop expansion over the remapped graph's adjacency.
    for (int hop = 0; hop < eco.blast_hops; ++hop) {
      std::vector<CellId> frontier;
      for (const DspGraphEdge& e : plan->graph.edges) {
        const CellId from = plan->graph.dsps[static_cast<size_t>(e.from)];
        const CellId to = plan->graph.dsps[static_cast<size_t>(e.to)];
        if (plan->is_moving[static_cast<size_t>(from)] &&
            !plan->is_moving[static_cast<size_t>(to)])
          frontier.push_back(to);
        if (plan->is_moving[static_cast<size_t>(to)] &&
            !plan->is_moving[static_cast<size_t>(from)])
          frontier.push_back(from);
      }
      for (CellId c : frontier) plan->is_moving[static_cast<size_t>(c)] = 1;
    }
  }
  for (int ci = 0; ci < edited.num_chains(); ++ci) {
    const auto& chain = edited.chain(ci).cells;
    const bool any = std::any_of(chain.begin(), chain.end(), [&](CellId c) {
      return plan->is_moving[static_cast<size_t>(c)] != 0;
    });
    if (any)
      for (CellId c : chain) plan->is_moving[static_cast<size_t>(c)] = 1;
  }
  for (CellId c : edited_datapath)
    if (plan->is_moving[static_cast<size_t>(c)])
      plan->moving.push_back(c);
  plan->pinned = static_cast<int>(edited_datapath.size() - plan->moving.size());

  const double blast =
      edited_datapath.empty()
          ? 0.0
          : static_cast<double>(plan->moving.size()) / edited_datapath.size();
  if (blast > eco.max_blast_fraction)
    return fall_back("blast radius " + std::to_string(blast) + " exceeds limit");

  out.sites_pinned = plan->pinned;
  out.moving_dsps = static_cast<int>(plan->moving.size());

  // ---- compose and run the ECO flow ------------------------------------------
  FlowContext ctx(edited, dev, no_training(), opts, pool);
  ctx.cancel = eco.cancel;
  {
    Fnv1a salt;
    salt.str("eco-v1");
    salt.u64(base_root);
    salt.u64(base_snap_key);
    salt.u64(edit_content_hash(edit));
    ctx.cache_salt = salt.digest();
  }

  std::vector<FlowStage> stages;
  stages.push_back({stage::kPrototype, phase::kPrototype,
                    [plan](FlowContext& c) { eco_prototype(c, plan); }, {}});
  stages.push_back({stage::kExtract, phase::kExtraction,
                    [plan](FlowContext& c) { eco_extract(c, plan); }, {}});
  stages.push_back({stage::kDspPlace, phase::kDspPlacement,
                    [plan](FlowContext& c) { eco_dsp_place(c, plan); }, {}});
  stages.push_back({stage::kReplace, phase::kOtherPlacement, eco_replace, {}});
  stages.push_back({stage::kRouteReport, phase::kRouting, stage_route_report, {}});

  out.result = scheduler ? scheduler->run(ctx, stages) : run_flow_sequential(ctx, stages);

  // ---- per-stage action tally -----------------------------------------------
  auto action = [&](const char* stage, bool patched) {
    if (trace_stage_counter(out.result.trace, stage, "cache_hit") > 0) {
      ++out.stages_restored;
      return;
    }
    count_element_action(stage, patched);
    if (patched)
      ++out.stages_patched;
    else
      ++out.stages_rerun;
  };
  action(stage::kPrototype, true);
  action(stage::kExtract, !plan->rebuild_graph);
  action(stage::kDspPlace, !plan->dsp_place_fellback);
  action(stage::kReplace, true);
  action(stage::kRouteReport, false);
  if (plan->dsp_place_fellback) eco_metrics().fallbacks.inc();
  eco_metrics().patched_stages.inc(out.stages_patched);
  eco_metrics().pinned.inc(out.sites_pinned);
  return out;
}

}  // namespace dsp
