#include "eco/netlist_diff.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.hpp"

namespace dsp {
namespace {

CellType parse_type(const std::string& s, int line_no) {
  if (s == "LUT") return CellType::kLut;
  if (s == "LUTRAM") return CellType::kLutRam;
  if (s == "FF") return CellType::kFlipFlop;
  if (s == "CARRY") return CellType::kCarry;
  if (s == "DSP") return CellType::kDsp;
  if (s == "BRAM") return CellType::kBram;
  if (s == "IO") return CellType::kIo;
  if (s == "PSPORT") return CellType::kPsPort;
  throw std::runtime_error("edit parse error line " + std::to_string(line_no) +
                           ": unknown cell type '" + s + "'");
}

CellEdit cell_state(const Cell& c) {
  CellEdit e;
  e.name = c.name;
  e.type = c.type;
  e.role = c.role;
  e.fixed = c.fixed;
  e.fixed_x = c.fixed ? c.fixed_x : 0.0;
  e.fixed_y = c.fixed ? c.fixed_y : 0.0;
  return e;
}

NetEdit net_state(const Netlist& nl, const Net& n) {
  NetEdit e;
  e.name = n.name;
  e.driver = nl.cell(n.driver).name;
  e.sinks.reserve(n.sinks.size());
  for (CellId s : n.sinks) e.sinks.push_back(nl.cell(s).name);
  e.weight = n.weight;
  return e;
}

void emit_cell(std::ostringstream& os, const char* kw, const CellEdit& c) {
  os << kw << ' ' << c.name << ' ' << cell_type_name(c.type);
  if (c.role == DspRole::kDatapath) os << " role=datapath";
  if (c.role == DspRole::kControl) os << " role=control";
  if (c.fixed) os << " fixed=" << c.fixed_x << ',' << c.fixed_y;
  os << '\n';
}

void emit_net(std::ostringstream& os, const char* kw, const NetEdit& n) {
  os << kw << ' ' << n.name << ' ' << n.driver;
  for (const std::string& s : n.sinks) os << ' ' << s;
  if (n.weight != 1.0) os << " w=" << n.weight;
  os << '\n';
}

}  // namespace

bool NetlistEdit::empty() const { return num_edits() == 0; }

int NetlistEdit::num_edits() const {
  return static_cast<int>(add_cells.size() + remove_cells.size() + change_cells.size() +
                          add_nets.size() + remove_nets.size() + rewire_nets.size() +
                          weight_changes.size() + add_chains.size() + remove_chains.size());
}

void canonicalize_edit(NetlistEdit* edit) {
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(edit->add_cells.begin(), edit->add_cells.end(), by_name);
  std::sort(edit->remove_cells.begin(), edit->remove_cells.end());
  std::sort(edit->change_cells.begin(), edit->change_cells.end(), by_name);
  std::sort(edit->add_nets.begin(), edit->add_nets.end(), by_name);
  std::sort(edit->remove_nets.begin(), edit->remove_nets.end());
  std::sort(edit->rewire_nets.begin(), edit->rewire_nets.end(), by_name);
  std::sort(edit->weight_changes.begin(), edit->weight_changes.end(), by_name);
  std::sort(edit->add_chains.begin(), edit->add_chains.end(),
            [](const ChainEdit& a, const ChainEdit& b) { return a.cells < b.cells; });
  std::sort(edit->remove_chains.begin(), edit->remove_chains.end());
}

NetlistEdit diff_netlists(const Netlist& base, const Netlist& revised) {
  NetlistEdit edit;

  // ---- cells, matched by name ----------------------------------------------
  std::unordered_map<std::string, CellId> base_cells, rev_cells;
  base_cells.reserve(static_cast<size_t>(base.num_cells()));
  for (CellId i = 0; i < base.num_cells(); ++i) base_cells.emplace(base.cell(i).name, i);
  rev_cells.reserve(static_cast<size_t>(revised.num_cells()));
  for (CellId i = 0; i < revised.num_cells(); ++i)
    rev_cells.emplace(revised.cell(i).name, i);

  for (CellId i = 0; i < base.num_cells(); ++i)
    if (!rev_cells.count(base.cell(i).name)) edit.remove_cells.push_back(base.cell(i).name);
  for (CellId i = 0; i < revised.num_cells(); ++i) {
    const Cell& rc = revised.cell(i);
    const auto it = base_cells.find(rc.name);
    if (it == base_cells.end()) {
      edit.add_cells.push_back(cell_state(rc));
      continue;
    }
    // Chain membership is diffed through the chain records, not per cell.
    const CellEdit before = cell_state(base.cell(it->second));
    const CellEdit after = cell_state(rc);
    if (!(before == after)) edit.change_cells.push_back(after);
  }

  // ---- nets, matched by name ------------------------------------------------
  std::unordered_map<std::string, NetId> base_nets;
  base_nets.reserve(static_cast<size_t>(base.num_nets()));
  for (NetId i = 0; i < base.num_nets(); ++i) base_nets.emplace(base.net(i).name, i);
  std::unordered_set<std::string> rev_net_names;
  rev_net_names.reserve(static_cast<size_t>(revised.num_nets()));
  for (NetId i = 0; i < revised.num_nets(); ++i)
    rev_net_names.insert(revised.net(i).name);

  for (NetId i = 0; i < base.num_nets(); ++i)
    if (!rev_net_names.count(base.net(i).name)) edit.remove_nets.push_back(base.net(i).name);
  for (NetId i = 0; i < revised.num_nets(); ++i) {
    const NetEdit after = net_state(revised, revised.net(i));
    const auto it = base_nets.find(after.name);
    if (it == base_nets.end()) {
      edit.add_nets.push_back(after);
      continue;
    }
    const NetEdit before = net_state(base, base.net(it->second));
    if (before == after) continue;
    if (before.driver == after.driver && before.sinks == after.sinks)
      edit.weight_changes.push_back({after.name, after.weight});
    else
      edit.rewire_nets.push_back(after);
  }

  // ---- cascade chains, keyed by head cell -----------------------------------
  auto chain_names = [](const Netlist& nl, int ci) {
    std::vector<std::string> names;
    names.reserve(nl.chain(ci).cells.size());
    for (CellId c : nl.chain(ci).cells) names.push_back(nl.cell(c).name);
    return names;
  };
  std::unordered_map<std::string, std::vector<std::string>> base_chains;
  for (int ci = 0; ci < base.num_chains(); ++ci) {
    auto names = chain_names(base, ci);
    base_chains.emplace(names.front(), std::move(names));
  }
  std::unordered_set<std::string> matched_heads;
  for (int ci = 0; ci < revised.num_chains(); ++ci) {
    auto names = chain_names(revised, ci);
    const auto it = base_chains.find(names.front());
    if (it != base_chains.end() && it->second == names) {
      matched_heads.insert(names.front());
      continue;
    }
    if (it != base_chains.end()) {
      // Same head, different members: replace the chain.
      matched_heads.insert(names.front());
      edit.remove_chains.push_back(names.front());
    }
    edit.add_chains.push_back({std::move(names)});
  }
  for (const auto& [head, names] : base_chains)
    if (!matched_heads.count(head)) edit.remove_chains.push_back(head);

  canonicalize_edit(&edit);
  return edit;
}

Netlist apply_edit(const Netlist& base, const NetlistEdit& edit) {
  auto fail = [](const std::string& msg) -> void {
    throw std::runtime_error("apply_edit: " + msg);
  };

  std::unordered_set<std::string> removed_cells(edit.remove_cells.begin(),
                                                edit.remove_cells.end());
  std::unordered_map<std::string, const CellEdit*> changed;
  for (const CellEdit& c : edit.change_cells) changed.emplace(c.name, &c);
  std::unordered_set<std::string> removed_nets(edit.remove_nets.begin(),
                                               edit.remove_nets.end());
  std::unordered_map<std::string, const NetEdit*> rewired;
  for (const NetEdit& n : edit.rewire_nets) rewired.emplace(n.name, &n);
  std::unordered_map<std::string, double> reweighted;
  for (const WeightEdit& w : edit.weight_changes) reweighted.emplace(w.name, w.weight);
  std::unordered_set<std::string> removed_chains(edit.remove_chains.begin(),
                                                 edit.remove_chains.end());

  for (const std::string& name : edit.remove_cells)
    if (!base.find_cell(name)) fail("rmcell '" + name + "': no such cell in base");
  for (const CellEdit& c : edit.change_cells) {
    if (!base.find_cell(c.name)) fail("setcell '" + c.name + "': no such cell in base");
    if (removed_cells.count(c.name)) fail("setcell '" + c.name + "' also removed");
  }

  Netlist out(base.name());

  // ---- cells: survivors in base order, then additions -----------------------
  auto stamp = [&](CellId id, const CellEdit& e) {
    Cell& c = out.cell(id);
    c.role = e.role;
    c.fixed = e.fixed;
    c.fixed_x = e.fixed ? e.fixed_x : 0.0;
    c.fixed_y = e.fixed ? e.fixed_y : 0.0;
  };
  for (CellId i = 0; i < base.num_cells(); ++i) {
    const Cell& c = base.cell(i);
    if (removed_cells.count(c.name)) continue;
    const auto it = changed.find(c.name);
    const CellEdit state = it != changed.end() ? *it->second : cell_state(c);
    stamp(out.add_cell(c.name, state.type), state);
  }
  for (const CellEdit& c : edit.add_cells) {
    if (out.find_cell(c.name)) fail("addcell '" + c.name + "': name already exists");
    stamp(out.add_cell(c.name, c.type), c);
  }

  auto resolve = [&](const std::string& name, const std::string& what) -> CellId {
    const auto id = out.find_cell(name);
    if (!id) fail(what + " references cell '" + name + "' absent from the edited netlist");
    return *id;
  };

  // ---- nets: survivors in base order (rewired/reweighted in place), then
  // additions ------------------------------------------------------------------
  std::unordered_set<std::string> base_net_names;
  base_net_names.reserve(static_cast<size_t>(base.num_nets()));
  for (NetId i = 0; i < base.num_nets(); ++i) base_net_names.insert(base.net(i).name);
  for (const NetEdit& n : edit.rewire_nets) {
    if (!base_net_names.count(n.name)) fail("rewire '" + n.name + "': no such net in base");
    if (removed_nets.count(n.name)) fail("rewire '" + n.name + "' also removed");
  }
  for (const WeightEdit& w : edit.weight_changes)
    if (!base_net_names.count(w.name)) fail("weight '" + w.name + "': no such net in base");
  for (const std::string& n : edit.remove_nets)
    if (!base_net_names.count(n)) fail("rmnet '" + n + "': no such net in base");
  auto emit_net_record = [&](const NetEdit& n) {
    std::vector<CellId> sinks;
    sinks.reserve(n.sinks.size());
    for (const std::string& s : n.sinks) sinks.push_back(resolve(s, "net '" + n.name + "'"));
    const NetId id = out.add_net(n.name, resolve(n.driver, "net '" + n.name + "'"),
                                 std::move(sinks));
    out.net(id).weight = n.weight;
  };
  std::unordered_set<std::string> seen_nets;
  for (NetId i = 0; i < base.num_nets(); ++i) {
    const Net& n = base.net(i);
    if (removed_nets.count(n.name)) continue;
    NetEdit state;
    const auto it = rewired.find(n.name);
    if (it != rewired.end()) {
      state = *it->second;
    } else {
      state = net_state(base, n);
      const auto wit = reweighted.find(n.name);
      if (wit != reweighted.end()) state.weight = wit->second;
    }
    emit_net_record(state);
    seen_nets.insert(n.name);
  }
  for (const NetEdit& n : edit.add_nets) {
    if (seen_nets.count(n.name)) fail("addnet '" + n.name + "': name already exists");
    emit_net_record(n);
    seen_nets.insert(n.name);
  }

  // ---- chains: survivors in base order, then additions -----------------------
  for (int ci = 0; ci < base.num_chains(); ++ci) {
    const auto& cells = base.chain(ci).cells;
    const std::string head = base.cell(cells.front()).name;
    if (removed_chains.count(head)) continue;
    std::vector<CellId> members;
    members.reserve(cells.size());
    for (CellId c : cells)
      members.push_back(resolve(base.cell(c).name, "chain '" + head + "'"));
    out.add_cascade_chain(members);
  }
  for (const ChainEdit& ch : edit.add_chains) {
    std::vector<CellId> members;
    members.reserve(ch.cells.size());
    for (const std::string& name : ch.cells)
      members.push_back(resolve(name, "addchain '" + ch.cells.front() + "'"));
    out.add_cascade_chain(members);
  }

  const std::string err = out.validate();
  if (!err.empty()) fail("edited netlist invalid: " + err);
  return out;
}

std::string write_edit(const NetlistEdit& edit) {
  NetlistEdit e = edit;
  canonicalize_edit(&e);
  std::ostringstream os;
  for (const std::string& n : e.remove_nets) os << "rmnet " << n << '\n';
  for (const std::string& n : e.remove_chains) os << "rmchain " << n << '\n';
  for (const std::string& n : e.remove_cells) os << "rmcell " << n << '\n';
  for (const CellEdit& c : e.add_cells) emit_cell(os, "addcell", c);
  for (const CellEdit& c : e.change_cells) emit_cell(os, "setcell", c);
  for (const NetEdit& n : e.add_nets) emit_net(os, "addnet", n);
  for (const NetEdit& n : e.rewire_nets) emit_net(os, "rewire", n);
  for (const WeightEdit& w : e.weight_changes)
    os << "weight " << w.name << ' ' << w.weight << '\n';
  for (const ChainEdit& ch : e.add_chains) {
    os << "addchain";
    for (const std::string& c : ch.cells) os << ' ' << c;
    os << '\n';
  }
  return os.str();
}

NetlistEdit read_edit(const std::string& text) {
  NetlistEdit edit;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto bad = [&](const std::string& msg) -> void {
    throw std::runtime_error("edit parse error line " + std::to_string(line_no) + ": " + msg);
  };
  auto parse_cell = [&](std::istringstream& ls) {
    CellEdit c;
    std::string type;
    if (!(ls >> c.name >> type)) bad("cell record needs <name> <type>");
    c.type = parse_type(type, line_no);
    std::string attr;
    while (ls >> attr) {
      if (attr == "role=datapath") {
        c.role = DspRole::kDatapath;
      } else if (attr == "role=control") {
        c.role = DspRole::kControl;
      } else if (attr.rfind("fixed=", 0) == 0) {
        const auto comma = attr.find(',');
        if (comma == std::string::npos) bad("fixed=<x>,<y> expected");
        c.fixed = true;
        c.fixed_x = std::stod(attr.substr(6, comma - 6));
        c.fixed_y = std::stod(attr.substr(comma + 1));
      } else {
        bad("unknown attribute '" + attr + "'");
      }
    }
    return c;
  };
  auto parse_net = [&](std::istringstream& ls) {
    NetEdit n;
    if (!(ls >> n.name >> n.driver)) bad("net record needs <name> <driver>");
    std::string tok;
    while (ls >> tok) {
      if (tok.rfind("w=", 0) == 0)
        n.weight = std::stod(tok.substr(2));
      else
        n.sinks.push_back(tok);
    }
    if (n.sinks.empty()) bad("net record needs at least one sink");
    return n;
  };
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "addcell") {
      edit.add_cells.push_back(parse_cell(ls));
    } else if (kw == "setcell") {
      edit.change_cells.push_back(parse_cell(ls));
    } else if (kw == "rmcell") {
      std::string name;
      if (!(ls >> name)) bad("rmcell needs <name>");
      edit.remove_cells.push_back(name);
    } else if (kw == "addnet") {
      edit.add_nets.push_back(parse_net(ls));
    } else if (kw == "rewire") {
      edit.rewire_nets.push_back(parse_net(ls));
    } else if (kw == "rmnet") {
      std::string name;
      if (!(ls >> name)) bad("rmnet needs <name>");
      edit.remove_nets.push_back(name);
    } else if (kw == "weight") {
      WeightEdit w;
      if (!(ls >> w.name >> w.weight)) bad("weight needs <name> <weight>");
      edit.weight_changes.push_back(w);
    } else if (kw == "addchain") {
      ChainEdit ch;
      std::string name;
      while (ls >> name) ch.cells.push_back(name);
      if (ch.cells.empty()) bad("empty addchain");
      edit.add_chains.push_back(std::move(ch));
    } else if (kw == "rmchain") {
      std::string name;
      if (!(ls >> name)) bad("rmchain needs <head-cell>");
      edit.remove_chains.push_back(name);
    } else {
      bad("unknown keyword '" + kw + "'");
    }
  }
  canonicalize_edit(&edit);
  return edit;
}

uint64_t edit_content_hash(const NetlistEdit& edit) {
  // The text form is already canonical (write_edit canonicalizes), so
  // hashing it gives a representation-independent identity.
  Fnv1a h;
  h.str("eco-edit-v1");
  h.str(write_edit(edit));
  return h.digest();
}

std::vector<std::string> edit_touched_cells(const Netlist& base, const NetlistEdit& edit) {
  std::set<std::string> touched;
  for (const CellEdit& c : edit.add_cells) touched.insert(c.name);
  for (const std::string& c : edit.remove_cells) touched.insert(c);
  for (const CellEdit& c : edit.change_cells) touched.insert(c.name);

  auto touch_base_net = [&](const std::string& name) {
    for (NetId i = 0; i < base.num_nets(); ++i) {
      const Net& n = base.net(i);
      if (n.name != name) continue;
      touched.insert(base.cell(n.driver).name);
      for (CellId s : n.sinks) touched.insert(base.cell(s).name);
      return;
    }
  };
  auto touch_net_edit = [&](const NetEdit& n) {
    touched.insert(n.driver);
    for (const std::string& s : n.sinks) touched.insert(s);
    touch_base_net(n.name);  // old endpoints move out of the cone too
  };
  for (const NetEdit& n : edit.add_nets) touch_net_edit(n);
  for (const NetEdit& n : edit.rewire_nets) touch_net_edit(n);
  for (const std::string& n : edit.remove_nets) touch_base_net(n);
  for (const WeightEdit& w : edit.weight_changes) touch_base_net(w.name);

  for (const ChainEdit& ch : edit.add_chains)
    for (const std::string& c : ch.cells) touched.insert(c);
  for (const std::string& head : edit.remove_chains) {
    const auto id = base.find_cell(head);
    if (!id) continue;
    const int chain = base.cell(*id).cascade_chain;
    if (chain < 0) continue;
    for (CellId c : base.chain(chain).cells) touched.insert(base.cell(c).name);
  }
  return {touched.begin(), touched.end()};
}

}  // namespace dsp
