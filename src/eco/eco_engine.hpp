// ECO incremental re-placement (docs/ECO.md).
//
// Given a base netlist whose flow has already run (and, with caching on,
// left stage checkpoints behind), plus a NetlistEdit, the engine re-places
// the *edited* netlist without paying for a cold run. Per stage it decides
// between three actions:
//   restore — the ECO flow caches its own stages under a salted checkpoint
//             namespace (base root key + edit hash), so a repeated identical
//             ECO job restores instead of recomputing;
//   patch   — recompute only the blast radius: the prototype is the base
//             placement mapped by cell name (new cells seeded at the
//             centroid of their placed neighbors), the DSP graph is remapped
//             rather than rebuilt when the edit stays clear of DSP
//             connectivity, and the MCF re-assigns only the moving set while
//             every unaffected datapath DSP stays pinned at its base site
//             (pinned cells are fixed attractors to mcf_assign_dsps);
//   rerun   — the stage's full body, taken when the patch preconditions
//             fail (edit touches DSP connectivity, anchored legalization
//             runs out of free rows) or, for the whole flow, when the blast
//             radius exceeds max_blast_fraction or no base snapshot exists.
//
// An empty edit delegates to the standard pipeline on the unsalted
// namespace, so it is bit-identical to a warm full run — same placement,
// same checkpoint keys.
#pragma once

#include <functional>
#include <string>

#include "core/dsplacer.hpp"
#include "eco/netlist_diff.hpp"

namespace dsp {

class StageScheduler;
class ThreadPool;

struct EcoOptions {
  /// Moving-datapath-DSP share above which the whole flow falls back to a
  /// full rerun of the edited netlist (the patch bookkeeping would cost
  /// more than it saves, and HPWL fidelity degrades with very large moving
  /// sets).
  double max_blast_fraction = 0.5;
  /// DSP-graph hops around the edit seed pulled into the moving set (1 =
  /// direct DSP-graph neighbors of touched DSPs move too).
  int blast_hops = 1;
  /// Cooperative cancellation, polled at stage boundaries (threaded into
  /// FlowContext::cancel). Unset = never cancelled.
  std::function<bool()> cancel;
};

/// Per-stage action tally plus the flow result. `result.trace` and
/// `result.placement` describe the edited netlist.
struct EcoResult {
  DsplacerResult result;
  bool fell_back = false;   // whole flow ran cold (blast too large / no base)
  std::string fallback_reason;  // empty unless fell_back
  int stages_restored = 0;  // salted-namespace checkpoint hits
  int stages_patched = 0;
  int stages_rerun = 0;
  int sites_pinned = 0;     // datapath DSPs held at their base site
  int moving_dsps = 0;      // datapath DSPs the MCF re-assigned
};

/// Re-places `edited` (the caller's `apply_edit(base, edit)`) on `dev`.
/// `opts` must match the base run's options — the checkpoint chain
/// recomputes the base keys from them — and `edited` must stay alive for
/// the duration of the call. When `scheduler` is non-null the ECO stage
/// list runs through it (the element-DAG pipeline, warm-aware admission);
/// otherwise sequentially.
EcoResult run_eco(const Netlist& base, const Netlist& edited, const NetlistEdit& edit,
                  const Device& dev, const DsplacerOptions& opts, const EcoOptions& eco = {},
                  StageScheduler* scheduler = nullptr, ThreadPool* pool = nullptr);

}  // namespace dsp
