// Structural netlist diffing for the ECO re-placement engine (docs/ECO.md).
//
// An edit is expressed against cell/net *names* — the stable identity across
// two netlist revisions — never raw ids, which shift when cells are inserted
// or deleted. `diff_netlists` produces the canonical edit between two
// netlists; `apply_edit` replays an edit onto a base netlist (id order of
// surviving objects is preserved, so an empty edit reproduces the base
// bit-identically, content hash included). The two are inverses:
//   canonical(diff(a, apply(a, e))) == canonical(e).
//
// Edits round-trip through a line-based text format (one record per line,
// '#' comments) mirroring the netlist format of netlist/netlist_io.hpp:
//   addcell <name> <TYPE> [role=datapath|control] [fixed=<x>,<y>]
//   setcell <name> <TYPE> [role=datapath|control] [fixed=<x>,<y>]
//   rmcell  <name>
//   addnet  <name> <driver> <sink> [<sink> ...] [w=<weight>]
//   rewire  <name> <driver> <sink> [<sink> ...] [w=<weight>]
//   rmnet   <name>
//   weight  <name> <weight>
//   addchain <cell> <cell> ...
//   rmchain  <head-cell>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace dsp {

/// Full post-edit state of one cell (used by both addcell and setcell; a
/// setcell replaces every mutable attribute, so diffs never need per-field
/// deltas).
struct CellEdit {
  std::string name;
  CellType type = CellType::kLut;
  DspRole role = DspRole::kNotDsp;
  bool fixed = false;
  double fixed_x = 0.0;
  double fixed_y = 0.0;

  bool operator==(const CellEdit&) const = default;
};

/// Full post-edit connectivity of one net (addnet / rewire).
struct NetEdit {
  std::string name;
  std::string driver;
  std::vector<std::string> sinks;
  double weight = 1.0;

  bool operator==(const NetEdit&) const = default;
};

/// Criticality-weight-only change: connectivity untouched.
struct WeightEdit {
  std::string name;
  double weight = 1.0;

  bool operator==(const WeightEdit&) const = default;
};

/// One cascade macro, keyed by its head cell (chains have no names of their
/// own; the head is unique because a cell belongs to at most one chain).
struct ChainEdit {
  std::vector<std::string> cells;  // dataflow order, [0] is the head/key

  bool operator==(const ChainEdit&) const = default;
};

struct NetlistEdit {
  std::vector<CellEdit> add_cells;
  std::vector<std::string> remove_cells;
  std::vector<CellEdit> change_cells;

  std::vector<NetEdit> add_nets;
  std::vector<std::string> remove_nets;
  std::vector<NetEdit> rewire_nets;
  std::vector<WeightEdit> weight_changes;

  std::vector<ChainEdit> add_chains;
  std::vector<std::string> remove_chains;  // head-cell names

  bool empty() const;
  /// Total number of records (the "edit size" used by blast-radius gating).
  int num_edits() const;

  bool operator==(const NetlistEdit&) const = default;
};

/// Sorts every record list by its key (cell/net/head name) so two edits
/// describing the same change compare equal.
void canonicalize_edit(NetlistEdit* edit);

/// Canonical structural difference `base -> revised`, matching objects by
/// name. Nets whose connectivity is unchanged but whose weight differs land
/// in weight_changes; any connectivity change is a rewire.
NetlistEdit diff_netlists(const Netlist& base, const Netlist& revised);

/// Replays `edit` onto `base`. Surviving cells/nets/chains keep their
/// relative order (ids are re-densified); added objects append in edit
/// order. Throws std::runtime_error on an inconsistent edit: unknown names,
/// duplicate additions, or a removal that leaves a dangling reference (a
/// net or chain that still uses a removed cell must itself be removed or
/// rewired by the same edit).
Netlist apply_edit(const Netlist& base, const NetlistEdit& edit);

/// Serializes into the text format above (canonical record order).
std::string write_edit(const NetlistEdit& edit);

/// Parses the text format. Throws std::runtime_error with a line-numbered
/// message on malformed input.
NetlistEdit read_edit(const std::string& text);

/// Content hash of the canonical edit — folded into the ECO cache-namespace
/// salt so two jobs with the same base netlist and the same edit share
/// checkpoints.
uint64_t edit_content_hash(const NetlistEdit& edit);

/// Names of every cell in `base` the edit touches directly: added, removed,
/// or changed cells; endpoints (old and new) of every added, removed,
/// rewired, or re-weighted net; members of added or removed chains. The
/// EcoEngine expands this seed through cascade chains into the per-stage
/// blast radius (docs/ECO.md, "Blast radius").
std::vector<std::string> edit_touched_cells(const Netlist& base, const NetlistEdit& edit);

}  // namespace dsp
