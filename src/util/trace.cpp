#include "util/trace.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace dsp {

TraceNode& TraceNode::operator=(const TraceNode& other) {
  if (this == &other) return *this;
  name = other.name;
  seconds = other.seconds;
  entered = other.entered;
  counters = other.counters;
  children.clear();
  children.reserve(other.children.size());
  for (const auto& c : other.children)
    children.push_back(std::make_unique<TraceNode>(*c));
  return *this;
}

TraceNode& TraceNode::child(const std::string& child_name) {
  for (auto& c : children)
    if (c->name == child_name) return *c;
  children.push_back(std::make_unique<TraceNode>(child_name));
  return *children.back();
}

const TraceNode* TraceNode::find(const std::string& child_name) const {
  for (const auto& c : children)
    if (c->name == child_name) return c.get();
  return nullptr;
}

void TraceNode::add_counter(const std::string& counter, int64_t delta) {
  for (auto& [k, v] : counters) {
    if (k == counter) {
      v += delta;
      return;
    }
  }
  counters.emplace_back(counter, delta);
}

void TraceNode::max_counter(const std::string& counter, int64_t value) {
  for (auto& [k, v] : counters) {
    if (k == counter) {
      if (value > v) v = value;
      return;
    }
  }
  counters.emplace_back(counter, value);
}

int64_t TraceNode::counter(const std::string& counter) const {
  for (const auto& [k, v] : counters)
    if (k == counter) return v;
  return 0;
}

namespace {

void json_escape(const std::string& s, std::ostringstream& out) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out << '\\';
    out << ch;
  }
}

void node_to_json(const TraceNode& n, std::ostringstream& out) {
  char num[64];
  std::snprintf(num, sizeof num, "%.9g", n.seconds);
  out << "{\"name\":\"";
  json_escape(n.name, out);
  out << "\",\"seconds\":" << num << ",\"entered\":" << n.entered
      << ",\"counters\":{";
  for (size_t i = 0; i < n.counters.size(); ++i) {
    if (i > 0) out << ',';
    out << '"';
    json_escape(n.counters[i].first, out);
    out << "\":" << n.counters[i].second;
  }
  out << "},\"children\":[";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) out << ',';
    node_to_json(*n.children[i], out);
  }
  out << "]}";
}

// Minimal recursive-descent parser for the subset node_to_json emits.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool expect(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out->push_back(text[pos++]);
    }
    return expect('"');
  }
  bool parse_number(double* out) {
    skip_ws();
    const size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '-' ||
            text[pos] == '+' || text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E'))
      ++pos;
    if (pos == start) return false;
    *out = std::atof(text.substr(start, pos - start).c_str());
    return true;
  }
  bool parse_node(TraceNode* node) {
    if (!expect('{')) return false;
    bool first = true;
    while (!peek('}')) {
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      if (!parse_string(&key) || !expect(':')) return false;
      if (key == "name") {
        if (!parse_string(&node->name)) return false;
      } else if (key == "seconds") {
        if (!parse_number(&node->seconds)) return false;
      } else if (key == "entered") {
        double v = 0;
        if (!parse_number(&v)) return false;
        node->entered = static_cast<int64_t>(v);
      } else if (key == "counters") {
        if (!expect('{')) return false;
        bool cfirst = true;
        while (!peek('}')) {
          if (!cfirst && !expect(',')) return false;
          cfirst = false;
          std::string ck;
          double cv = 0;
          if (!parse_string(&ck) || !expect(':') || !parse_number(&cv)) return false;
          node->counters.emplace_back(ck, static_cast<int64_t>(cv));
        }
        if (!expect('}')) return false;
      } else if (key == "children") {
        if (!expect('[')) return false;
        bool afirst = true;
        while (!peek(']')) {
          if (!afirst && !expect(',')) return false;
          afirst = false;
          auto c = std::make_unique<TraceNode>();
          if (!parse_node(c.get())) return false;
          node->children.push_back(std::move(c));
        }
        if (!expect(']')) return false;
      } else {
        return false;  // unknown key: not a trace document
      }
    }
    return expect('}');
  }
};

}  // namespace

std::string TraceNode::to_json() const {
  std::ostringstream out;
  node_to_json(*this, out);
  return out.str();
}

bool trace_from_json(const std::string& text, TraceNode* out) {
  Parser p{text};
  TraceNode parsed;
  if (!p.parse_node(&parsed)) return false;
  p.skip_ws();
  if (p.pos != text.size()) return false;
  *out = std::move(parsed);
  return true;
}

void RunTrace::begin(const std::string& name) {
  TraceNode& c = current().child(name);
  ++c.entered;
  stack_.push_back(&c);
}

void RunTrace::end(double seconds) {
  if (stack_.size() <= 1) return;  // root cannot be closed
  stack_.back()->seconds += seconds;
  stack_.pop_back();
}

}  // namespace dsp
