#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"

namespace dsp {
namespace {

thread_local bool t_inside_worker = false;

/// Registry handles for the pool's live instrumentation (docs/METRICS.md).
/// Resolved once; the counters aggregate over every pool in the process
/// (in practice the process-global pool dominates). Unlike the per-run
/// peak_active trace counter, these are visible mid-run through /metrics
/// and the STATS frame.
struct PoolMetrics {
  Counter& tasks;
  Counter& parallel_fors;
  Gauge& queue_depth;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      global_metrics().counter(metric::kPoolTasks,
                               "Helper tasks enqueued by parallel_for"),
      global_metrics().counter(metric::kPoolParallelFors,
                               "parallel_for invocations (serial fast path included)"),
      global_metrics().gauge(metric::kPoolQueueDepth,
                             "Helper tasks queued but not yet claimed by a worker")};
  return m;
}

}  // namespace

bool ThreadPool::inside_worker() { return t_inside_worker; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = default_threads();
  const int workers = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    pool_metrics().queue_depth.sub(1);
    task();
  }
}

void ThreadPool::parallel_for(int64_t n, int64_t grain,
                              const std::function<void(int64_t, int64_t, int64_t)>& body) {
  if (n <= 0) return;
  pool_metrics().parallel_fors.inc();
  if (grain <= 0) {
    const int64_t lanes = num_threads();
    grain = std::max<int64_t>(1, (n + 4 * lanes - 1) / (4 * lanes));
  }
  const int64_t chunks = (n + grain - 1) / grain;

  // Serial fast path: no workers, a single chunk, or a nested call from a
  // worker thread (running inline avoids queue deadlock).
  if (workers_.empty() || chunks == 1 || inside_worker()) {
    for (int64_t c = 0; c < chunks; ++c)
      body(c, c * grain, std::min(n, (c + 1) * grain));
    return;
  }

  struct Batch {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();

  // Shared by the caller and the queued helper tasks. Helpers hold their
  // own copies of everything (a task may fire after the caller returned,
  // once all chunks are claimed; it must not touch caller stack state).
  auto drain = [batch, body, grain, n, chunks, this] {
    active_.fetch_add(1, std::memory_order_relaxed);
    int cur = active_.load(std::memory_order_relaxed);
    int peak = peak_.load(std::memory_order_relaxed);
    while (cur > peak && !peak_.compare_exchange_weak(peak, cur)) {
    }
    for (;;) {
      const int64_t c = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      try {
        body(c, c * grain, std::min(n, (c + 1) * grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mu);
        if (!batch->error) batch->error = std::current_exception();
      }
      if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(batch->mu);
        batch->cv.notify_all();
      }
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
  };

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), chunks - 1);
  pool_metrics().tasks.inc(helpers);
  pool_metrics().queue_depth.add(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t i = 0; i < helpers; ++i) tasks_.push(drain);
  }
  cv_.notify_all();

  drain();  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] { return batch->done.load() == chunks; });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::parallel_for_each(int64_t n, const std::function<void(int64_t)>& fn) {
  parallel_for(n, 0, [&fn](int64_t, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

int parse_thread_count(const std::string& text, std::string* error) {
  size_t begin = text.find_first_not_of(" \t");
  const size_t end = text.find_last_not_of(" \t");
  if (begin == std::string::npos) begin = text.size();
  const std::string trimmed =
      begin < text.size() ? text.substr(begin, end - begin + 1) : std::string();
  bool numeric = !trimmed.empty() && trimmed.size() <= 9;
  for (char c : trimmed) numeric &= (c >= '0' && c <= '9');
  const int value = numeric ? std::atoi(trimmed.c_str()) : 0;
  if (!numeric || value <= 0) {
    if (error != nullptr)
      *error = "thread count must be a positive integer, got '" + text + "'";
    return -1;
  }
  return value;
}

int default_threads() {
  if (const char* env = std::getenv("DSPLACER_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void set_global_threads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(n > 0 ? n : default_threads());
}

}  // namespace dsp
