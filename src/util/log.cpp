#include "util/log.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"

namespace dsp {
namespace {

LogLevel g_level = LogLevel::kInfo;
std::once_flag g_env_once;
std::mutex g_sink_mutex;

LogLevel parse_level(const char* s) {
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

void apply_env_once() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("DSPLACER_LOG")) g_level = parse_level(env);
  });
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  apply_env_once();
  g_level = level;
}

LogLevel log_level() {
  apply_env_once();
  return g_level;
}

thread_local std::string t_thread_tag;

void set_log_thread_tag(const std::string& tag) { t_thread_tag = tag; }

std::string log_thread_tag() { return t_thread_tag; }

void log_message(LogLevel level, const std::string& tag, const std::string& msg) {
  // Emitted-line counters by severity: a climbing warn/error series is the
  // cheapest fleet-wide smoke signal an operator can watch (docs/METRICS.md).
  static Counter* const by_level[] = {
      &global_metrics().counter(std::string(metric::kLogLines) + "{level=\"debug\"}",
                                "Log lines emitted by severity"),
      &global_metrics().counter(std::string(metric::kLogLines) + "{level=\"info\"}",
                                "Log lines emitted by severity"),
      &global_metrics().counter(std::string(metric::kLogLines) + "{level=\"warn\"}",
                                "Log lines emitted by severity"),
      &global_metrics().counter(std::string(metric::kLogLines) + "{level=\"error\"}",
                                "Log lines emitted by severity")};
  const int idx = static_cast<int>(level);
  if (idx >= 0 && idx <= 3) by_level[idx]->inc();
  // Assemble the complete line first so the sink performs exactly one
  // write: stderr is unbuffered, and a multi-part fprintf from concurrent
  // ThreadPool kernels or server workers could interleave partial lines.
  std::string line;
  line.reserve(tag.size() + t_thread_tag.size() + msg.size() + 24);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += tag;
  for (size_t i = tag.size(); i < 12; ++i) line += ' ';
  if (!t_thread_tag.empty()) {
    line += " [";
    line += t_thread_tag;
    line += ']';
  }
  line += ' ';
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

namespace detail {

std::string format_args(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace dsp
