// Lightweight leveled logger used across all DSPlacer subsystems.
//
// The logger writes to stderr so that bench harness tables on stdout stay
// machine-parsable. Verbosity is controlled globally (set_level) or via the
// DSPLACER_LOG environment variable ("debug", "info", "warn", "error",
// "off"), read once on first use.
#pragma once

#include <cstdio>
#include <string>

namespace dsp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Set the global log threshold. Messages below the threshold are dropped.
void set_log_level(LogLevel level);

/// Current global threshold (after applying DSPLACER_LOG on first call).
LogLevel log_level();

/// Core sink. Prefer the LOG_* macros below which add the call site tag.
/// Concurrency-safe: the whole line (including a trailing newline) is
/// formatted into one buffer and emitted with a single write under one
/// mutex, so lines from ThreadPool kernels and server workers never
/// interleave mid-line.
void log_message(LogLevel level, const std::string& tag, const std::string& msg);

/// Optional per-thread tag (worker index, job id) appended to every line
/// this thread logs, as "[tag]" after the call-site tag. Empty clears it.
/// Thread-local: each pool worker / server thread sets its own.
void set_log_thread_tag(const std::string& tag);

/// The calling thread's current tag ("" when unset).
std::string log_thread_tag();

namespace detail {
std::string format_args(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace dsp

#define DSP_LOG_AT(level, tag, ...)                                      \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::dsp::log_level())) \
      ::dsp::log_message(level, tag, ::dsp::detail::format_args(__VA_ARGS__)); \
  } while (0)

#define LOG_DEBUG(tag, ...) DSP_LOG_AT(::dsp::LogLevel::kDebug, tag, __VA_ARGS__)
#define LOG_INFO(tag, ...) DSP_LOG_AT(::dsp::LogLevel::kInfo, tag, __VA_ARGS__)
#define LOG_WARN(tag, ...) DSP_LOG_AT(::dsp::LogLevel::kWarn, tag, __VA_ARGS__)
#define LOG_ERROR(tag, ...) DSP_LOG_AT(::dsp::LogLevel::kError, tag, __VA_ARGS__)
