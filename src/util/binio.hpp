// Little-endian binary writer/reader for checkpoint artifacts
// (docs/TRACE_FORMAT.md). The reader is truncation-safe: every accessor
// bounds-checks, failure is sticky, and reads after a failure return zero —
// callers parse straight through and check fail()/done() once at the end
// instead of guarding each field. Corrupt length prefixes can never cause
// oversized allocations because lengths are checked against the bytes that
// actually remain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dsp {

class ByteWriter {
 public:
  void bytes(const void* p, size_t n) { buf_.append(static_cast<const char*>(p), n); }
  void u8(uint8_t v) { bytes(&v, 1); }
  void u32(uint32_t v) {
    const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                       static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    bytes(b, 4);
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  /// Bit pattern, so round trips are exact for every double (±0, NaN, denormals).
  void f64(double v) {
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    u64(b);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool fail() const { return fail_; }
  /// All bytes consumed and no read ever failed — the end-of-parse check.
  bool done() const { return !fail_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t u8() {
    uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  uint32_t u32() {
    unsigned char b[4] = {0, 0, 0, 0};
    take(b, 4);
    return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
           static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
  }
  uint64_t u64() {
    const uint64_t lo = u32();
    return lo | static_cast<uint64_t>(u32()) << 32;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    const uint64_t b = u64();
    double v = 0;
    std::memcpy(&v, &b, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const uint64_t n = u64();
    if (fail_ || n > remaining()) {
      fail_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Pre-flight for a length prefix: can `count` elements of `elem_size`
  /// bytes still fit in the remaining input? Marks failure if not, so a
  /// corrupt count fails before any allocation.
  bool fits(uint64_t count, size_t elem_size) {
    if (!fail_ && count <= remaining() / (elem_size == 0 ? 1 : elem_size)) return true;
    fail_ = true;
    return false;
  }

 private:
  bool take(void* out, size_t n) {
    if (fail_ || n > remaining()) {
      fail_ = true;
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace dsp
