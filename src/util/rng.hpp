// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the repository (netlist generation, GCN weight
// init, dropout masks, placer perturbations, property tests) draw from an
// explicitly seeded Rng so every experiment is reproducible run-to-run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace dsp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedu) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform 64-bit integer in [lo, hi] inclusive.
  int64_t uniform_i64(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial.
  bool flip(double p = 0.5) { return uniform() < p; }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Pick a uniformly random element index of a non-empty container size.
  size_t index(size_t size) {
    std::uniform_int_distribution<size_t> dist(0, size - 1);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dsp
