// A small fixed-size thread pool with a chunked parallel_for, used by the
// flow's embarrassingly-parallel kernels (per-source Brandes, per-node
// feature assembly, per-source IDDFS, per-DSP MCF arc construction).
//
// Determinism contract: parallel_for partitions [0, n) into chunks whose
// boundaries depend ONLY on n and the `grain` argument — never on the
// thread count or on scheduling. A kernel that accumulates floating-point
// partials per chunk and reduces them in chunk order therefore produces
// bit-identical results for any number of threads, including one.
//
// There is no work stealing: chunks are claimed from a shared atomic
// counter, the calling thread participates, and nested parallel_for calls
// from inside a worker run inline (serially), so nesting cannot deadlock.
// The first exception thrown by a chunk is rethrown on the calling thread
// after the loop drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace dsp {

class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: a pool of N runs loop bodies
  /// on N-1 workers plus the caller. 0 (and 1) mean fully serial.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread); always >= 1.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(chunk_index, begin, end) over the chunked range [0, n).
  /// `grain` is the chunk length; pass an explicit value when the caller
  /// reduces per-chunk partials (see the determinism contract above).
  /// grain <= 0 picks a load-balancing default that may depend on the
  /// thread count — only safe for order-independent bodies.
  void parallel_for(int64_t n, int64_t grain,
                    const std::function<void(int64_t, int64_t, int64_t)>& body);

  /// Convenience: runs fn(i) for each i in [0, n) with independent
  /// iterations (no reduction); chunking is unspecified.
  void parallel_for_each(int64_t n, const std::function<void(int64_t)>& fn);

  /// High-water mark of lanes simultaneously executing chunks since the
  /// last reset_peak(); instrumentation only.
  int peak_active() const { return peak_.load(std::memory_order_relaxed); }
  void reset_peak() { peak_.store(0, std::memory_order_relaxed); }

  /// True when the current thread is one of this process's pool workers
  /// (any pool); nested parallel loops detect this and run inline.
  static bool inside_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
  std::atomic<int> active_{0};
  std::atomic<int> peak_{0};
};

/// Strict thread-count parse shared by `--threads` and DSPLACER_THREADS
/// validation: returns the value for a positive integer (optionally
/// surrounded by whitespace), else -1 with a diagnostic in *error
/// ("thread count must be a positive integer, got '0'").
int parse_thread_count(const std::string& text, std::string* error);

/// Threads to use when nothing was configured: the DSPLACER_THREADS
/// environment variable if set to a positive integer, else
/// hardware_concurrency (min 1). Tools validate DSPLACER_THREADS with
/// parse_thread_count at startup and refuse to run on a malformed value;
/// this fallback only tolerates it for library embedders.
int default_threads();

/// The process-wide pool used by kernels when no pool is passed
/// explicitly. Created on first use with default_threads() lanes.
ThreadPool& global_pool();

/// Replaces the global pool with one of `n` lanes (n <= 0 restores the
/// default). Not safe to call while a parallel_for is in flight.
void set_global_threads(int n);

}  // namespace dsp
