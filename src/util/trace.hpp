// Structured run instrumentation: a nested tree of named stages, each with
// accumulated wall time and ordered integer counters (nodes visited, MCF
// arcs, ILP pivots, peak threads, ...). The DSPlacer flow records one
// RunTrace per run; the CLI exports it as JSON (--trace out.json) and
// bench_fig8 consumes the JSON for the Fig. 8 stage table.
//
// Re-entering a stage name under the same parent accumulates into the
// existing node (the flow's DspPlace/Replace alternation folds its outer
// iterations into one node each, like the flat Fig. 8 profile).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace dsp {

struct TraceNode {
  std::string name;
  double seconds = 0.0;
  int64_t entered = 0;  // times this stage was opened
  std::vector<std::pair<std::string, int64_t>> counters;  // insertion order
  std::vector<std::unique_ptr<TraceNode>> children;       // insertion order

  TraceNode() = default;
  explicit TraceNode(std::string n) : name(std::move(n)) {}
  TraceNode(const TraceNode& other) { *this = other; }
  TraceNode& operator=(const TraceNode& other);
  TraceNode(TraceNode&&) = default;
  TraceNode& operator=(TraceNode&&) = default;

  /// Child with this name, created (appended) if absent.
  TraceNode& child(const std::string& child_name);
  /// Child lookup without creation; nullptr if absent.
  const TraceNode* find(const std::string& child_name) const;

  /// Adds `delta` to the named counter, creating it at the end on first use.
  void add_counter(const std::string& counter, int64_t delta);
  /// Sets the named counter to the maximum of its current value and `value`.
  void max_counter(const std::string& counter, int64_t value);
  int64_t counter(const std::string& counter) const;

  /// Serializes this subtree as a JSON object.
  std::string to_json() const;
};

/// Parses a TraceNode JSON document produced by to_json(). Returns false on
/// malformed input (only the subset to_json emits is supported).
bool trace_from_json(const std::string& text, TraceNode* out);

/// A RunTrace is a TraceNode tree plus a cursor for scoped begin/end.
class RunTrace {
 public:
  explicit RunTrace(std::string root_name = "dsplacer")
      : root_(std::move(root_name)) {
    stack_.push_back(&root_);
  }
  RunTrace(const RunTrace& other) { *this = other; }
  RunTrace& operator=(const RunTrace& other) {
    root_ = other.root_;
    stack_.assign(1, &root_);
    return *this;
  }

  TraceNode& root() { return root_; }
  const TraceNode& root() const { return root_; }
  /// The innermost open stage (the root when none is open).
  TraceNode& current() { return *stack_.back(); }

  /// Opens (or re-enters) the named child stage of the current one.
  void begin(const std::string& name);
  /// Closes the innermost stage, accumulating `seconds` into it.
  void end(double seconds);

  /// Counter helpers applied to the innermost open stage.
  void add_counter(const std::string& name, int64_t delta) {
    current().add_counter(name, delta);
  }
  void max_counter(const std::string& name, int64_t value) {
    current().max_counter(name, value);
  }

  std::string to_json() const { return root_.to_json(); }

 private:
  TraceNode root_;
  std::vector<TraceNode*> stack_;
};

/// RAII stage scope: begin on construction, end (with elapsed wall time) on
/// destruction. Optionally mirrors the duration into a flat PhaseProfile
/// bucket so the Fig. 8 view stays in sync with the tree.
class ScopedStage {
 public:
  ScopedStage(RunTrace& trace, std::string name, PhaseProfile* flat = nullptr,
              std::string flat_phase = "")
      : trace_(trace), flat_(flat),
        flat_phase_(flat_phase.empty() ? name : std::move(flat_phase)) {
    trace_.begin(name);
  }
  ~ScopedStage() {
    const double s = timer_.seconds();
    trace_.end(s);
    if (flat_ != nullptr) flat_->add(flat_phase_, s);
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  RunTrace& trace_;
  PhaseProfile* flat_;
  std::string flat_phase_;
  Timer timer_;
};

}  // namespace dsp
