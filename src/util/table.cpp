#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace dsp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace dsp
