#include "util/svg.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dsp {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

SvgWriter::SvgWriter(double width, double height) : width_(width), height_(height) {}

void SvgWriter::rect(double x, double y, double w, double h, const std::string& fill,
                     double opacity, const std::string& stroke) {
  std::ostringstream os;
  os << "<rect x=\"" << num(x) << "\" y=\"" << num(y) << "\" width=\"" << num(w)
     << "\" height=\"" << num(h) << "\" fill=\"" << fill << "\" opacity=\""
     << num(opacity) << "\" stroke=\"" << stroke << "\"/>";
  body_.push_back(os.str());
}

void SvgWriter::line(double x1, double y1, double x2, double y2,
                     const std::string& stroke, double stroke_width, double opacity) {
  std::ostringstream os;
  os << "<line x1=\"" << num(x1) << "\" y1=\"" << num(y1) << "\" x2=\"" << num(x2)
     << "\" y2=\"" << num(y2) << "\" stroke=\"" << stroke << "\" stroke-width=\""
     << num(stroke_width) << "\" opacity=\"" << num(opacity) << "\"/>";
  body_.push_back(os.str());
}

void SvgWriter::circle(double cx, double cy, double r, const std::string& fill,
                       double opacity) {
  std::ostringstream os;
  os << "<circle cx=\"" << num(cx) << "\" cy=\"" << num(cy) << "\" r=\"" << num(r)
     << "\" fill=\"" << fill << "\" opacity=\"" << num(opacity) << "\"/>";
  body_.push_back(os.str());
}

void SvgWriter::text(double x, double y, const std::string& content, double font_size,
                     const std::string& fill) {
  std::ostringstream os;
  os << "<text x=\"" << num(x) << "\" y=\"" << num(y) << "\" font-size=\""
     << num(font_size) << "\" fill=\"" << fill
     << "\" font-family=\"monospace\">" << escape(content) << "</text>";
  body_.push_back(os.str());
}

std::string SvgWriter::to_string() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 " << num(width_)
     << ' ' << num(height_) << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << num(width_) << "\" height=\""
     << num(height_) << "\" fill=\"#ffffff\"/>\n";
  for (const auto& e : body_) os << e << '\n';
  os << "</svg>\n";
  return os.str();
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace dsp
