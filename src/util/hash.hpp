// Content hashing for the stage checkpoint cache (docs/ARCHITECTURE.md):
// 64-bit FNV-1a over a canonical little-endian byte stream. Not
// cryptographic — collisions only need to be unlikely between accidental
// option/netlist coincidences, and checkpoint payloads are re-validated
// against a stored hash at load time anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dsp {

class Fnv1a {
 public:
  static constexpr uint64_t kOffset = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) state_ = (state_ ^ p[i]) * kPrime;
  }
  void u8(uint8_t v) { bytes(&v, 1); }
  void u32(uint32_t v) {
    const unsigned char b[4] = {static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
                                static_cast<unsigned char>(v >> 16),
                                static_cast<unsigned char>(v >> 24)};
    bytes(b, 4);
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  /// Hashes the bit pattern, so -0.0 vs 0.0 and NaN payloads distinguish.
  void f64(double v) {
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    u64(b);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed, so consecutive strings cannot alias each other.
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = kOffset;
};

inline uint64_t hash_bytes(const void* data, size_t n) {
  Fnv1a h;
  h.bytes(data, n);
  return h.digest();
}

inline uint64_t hash_combine(uint64_t a, uint64_t b) {
  Fnv1a h;
  h.u64(a);
  h.u64(b);
  return h.digest();
}

/// 16 lowercase hex digits (zero-padded) — checkpoint filename suffix.
inline std::string hex16(uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[static_cast<size_t>(i)] = kDigits[v & 0xf];
  return s;
}

}  // namespace dsp
