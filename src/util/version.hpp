// Single source of truth for the toolchain version reported by
// `dsplacer_cli --version`, `dsplacerd --version`, and
// `dsplacer_submit --version`. Bump on releases; the wire protocol has
// its own independent version (server/protocol.hpp).
#pragma once

#include <string>

namespace dsp {

inline constexpr const char* kDsplacerVersion = "0.4.0";

/// "dsplacerd 0.4.0 (protocol 1)"-style line for a named tool.
inline std::string version_line(const char* tool) {
  return std::string(tool) + " " + kDsplacerVersion;
}

}  // namespace dsp
