// Minimal SVG writer used to render placement layouts (paper Fig. 9):
// device columns, DSP sites, placed cells and datapath edges.
#pragma once

#include <string>
#include <vector>

namespace dsp {

class SvgWriter {
 public:
  /// Canvas in user units; a view box is emitted so any size renders.
  SvgWriter(double width, double height);

  void rect(double x, double y, double w, double h, const std::string& fill,
            double opacity = 1.0, const std::string& stroke = "none");
  void line(double x1, double y1, double x2, double y2, const std::string& stroke,
            double stroke_width = 1.0, double opacity = 1.0);
  void circle(double cx, double cy, double r, const std::string& fill,
              double opacity = 1.0);
  void text(double x, double y, const std::string& content, double font_size = 10.0,
            const std::string& fill = "#222222");

  /// Full document text.
  std::string to_string() const;

  /// Write the document to `path`; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  double width_;
  double height_;
  std::vector<std::string> body_;
};

}  // namespace dsp
