// Fixed-width ASCII table printer used by the bench harnesses to emit the
// paper's tables (Table I, Table II, Fig. 7a) in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

namespace dsp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column-aligned cells and a header separator.
  std::string to_string() const;

  /// Render as comma-separated values (header first).
  std::string to_csv() const;

  size_t num_rows() const { return rows_.size(); }

  // Formatting helpers for cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsp
