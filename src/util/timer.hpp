// Wall-clock timers and a named stopwatch registry used for the Fig. 8
// runtime-breakdown profiling of the DSPlacer flow.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace dsp {

/// Simple monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations; the DSPlacer flow driver uses one
/// instance per run to produce the runtime-breakdown report (paper Fig. 8).
class PhaseProfile {
 public:
  void add(const std::string& phase, double seconds) {
    for (auto& [k, v] : acc_) {
      if (k == phase) {
        v += seconds;
        return;
      }
    }
    acc_.emplace_back(phase, seconds);
  }

  double total() const {
    double t = 0;
    for (const auto& [k, v] : acc_) t += v;
    return t;
  }

  double seconds(const std::string& phase) const {
    for (const auto& [k, v] : acc_)
      if (k == phase) return v;
    return 0.0;
  }

  /// Phases in first-insertion order (the order the flow entered them),
  /// so Fig. 8 reports stages in pipeline order regardless of name.
  const std::vector<std::pair<std::string, double>>& entries() const { return acc_; }

 private:
  std::vector<std::pair<std::string, double>> acc_;
};

/// RAII helper: times a scope and adds the duration to a PhaseProfile.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfile& profile, std::string phase)
      : profile_(profile), phase_(std::move(phase)) {}
  ~ScopedPhase() { profile_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfile& profile_;
  std::string phase_;
  Timer timer_;
};

}  // namespace dsp
