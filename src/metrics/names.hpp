// Canonical metric names — the single source of truth for every series the
// process registers in the global MetricsRegistry (docs/METRICS.md).
//
// Every instrumented subsystem takes its metric names from this header, so
// the full fleet of series is enumerable in one place. docs_lint parses the
// string literals out of the `namespace metric { ... }` block below (the
// same way it parses stage names out of src/core/flow.hpp) and fails the
// build when docs/METRICS.md drifts from this catalog: a renamed or new
// metric must be documented, and the doc cannot mention series that no
// code registers.
//
// Labeled families (jobs by status, protocol errors by cause, stage
// latencies by stage) are listed here by their base name; the code appends
// `{label="value"}` when registering each member (see metrics.hpp on how
// labels render in the Prometheus exposition).
#pragma once

namespace dsp {
namespace metric {

// ---- server job lifecycle (src/server/server.cpp) ----
inline constexpr const char* kJobsSubmitted = "dsplacer_jobs_submitted_total";
inline constexpr const char* kJobsCompleted = "dsplacer_jobs_completed_total";
inline constexpr const char* kQueueDepth = "dsplacer_queue_depth";
inline constexpr const char* kJobsInflight = "dsplacer_jobs_inflight";
inline constexpr const char* kConnections = "dsplacer_connections_total";
inline constexpr const char* kProtocolErrors = "dsplacer_protocol_errors_total";
inline constexpr const char* kStatsRequests = "dsplacer_stats_requests_total";
inline constexpr const char* kJobE2eUs = "dsplacer_job_e2e_us";
inline constexpr const char* kStageUs = "dsplacer_stage_us";

// ---- stage checkpoint cache (src/core/flow.cpp, src/core/checkpoint.cpp) ----
inline constexpr const char* kCacheHit = "dsplacer_cache_hit_total";
inline constexpr const char* kCacheMiss = "dsplacer_cache_miss_total";
inline constexpr const char* kCacheBad = "dsplacer_cache_bad_total";
inline constexpr const char* kCacheLoad = "dsplacer_cache_load_total";
inline constexpr const char* kCacheStore = "dsplacer_cache_store_total";
inline constexpr const char* kCacheEvictions = "dsplacer_cache_evictions_total";

// ---- ECO incremental re-placement (src/eco/eco_engine.cpp) ----
// Per-job tallies plus per-element patched/rerun families so dsplacer_stats
// --elements can show where ECO jobs fall back (docs/ECO.md).
inline constexpr const char* kEcoJobs = "dsplacer_eco_jobs_total";
inline constexpr const char* kEcoPatchedStages = "dsplacer_eco_patched_stages_total";
inline constexpr const char* kEcoRerunFallbacks = "dsplacer_eco_rerun_fallbacks_total";
inline constexpr const char* kEcoSitesPinned = "dsplacer_eco_sites_pinned_total";
inline constexpr const char* kElementEcoPatched = "dsplacer_element_eco_patched_total";
inline constexpr const char* kElementEcoRerun = "dsplacer_element_eco_rerun_total";

// ---- stage scheduler (src/core/stage_scheduler.cpp) ----
inline constexpr const char* kSchedJobs = "dsplacer_sched_jobs_total";
inline constexpr const char* kStageJobs = "dsplacer_stage_jobs";
inline constexpr const char* kStageQueueWaitUs = "dsplacer_stage_queue_wait_us";
inline constexpr const char* kExtractBatchSize = "dsplacer_extract_batch_jobs";
// Element-DAG series: one family member per pipeline element (an element is
// a stage, or one sub-step of a decomposed stage, e.g. "DspPlace.assign").
inline constexpr const char* kElementJobs = "dsplacer_element_jobs_total";
inline constexpr const char* kElementQueueDepth = "dsplacer_element_queue_depth";
inline constexpr const char* kElementBusyUs = "dsplacer_element_busy_us";
inline constexpr const char* kElementQueueWaitUs = "dsplacer_element_queue_wait_us";
inline constexpr const char* kElementWidth = "dsplacer_element_width";
inline constexpr const char* kSchedWarmAdmissions = "dsplacer_sched_warm_admissions_total";

// ---- shared warm state (src/graph/graph_pool.cpp, src/extract/classifier.cpp) ----
inline constexpr const char* kGraphPoolHit = "dsplacer_graph_pool_hit_total";
inline constexpr const char* kGraphPoolMiss = "dsplacer_graph_pool_miss_total";
inline constexpr const char* kGcnWeightsHit = "dsplacer_gcn_weights_hit_total";
inline constexpr const char* kGcnWeightsMiss = "dsplacer_gcn_weights_miss_total";

// ---- MCF assignment solver (src/core/mcf_assign.cpp) ----
// Counters: solves and how many of them were warm-started; priced vs total
// arcs measure column-generation sparsity (priced/total = fraction of the
// candidate universe ever materialized — the two series deliberately share
// a unit so the ratio is meaningful, hence no `_total` suffix on either).
inline constexpr const char* kMcfSolves = "dsplacer_mcf_solves_total";
inline constexpr const char* kMcfWarmStarts = "dsplacer_mcf_warm_starts_total";
inline constexpr const char* kMcfPricedArcs = "dsplacer_mcf_priced_arcs";
inline constexpr const char* kMcfTotalArcs = "dsplacer_mcf_total_arcs";
inline constexpr const char* kMcfSolveUs = "dsplacer_mcf_solve_us";

// ---- thread pool (src/util/thread_pool.cpp) ----
inline constexpr const char* kPoolTasks = "dsplacer_pool_tasks_total";
inline constexpr const char* kPoolParallelFors = "dsplacer_pool_parallel_fors_total";
inline constexpr const char* kPoolQueueDepth = "dsplacer_pool_queue_depth";

// ---- kernel workspaces (src/graph/csr_graph.cpp) ----
inline constexpr const char* kWorkspaceAcquired = "dsplacer_workspace_acquired_total";
inline constexpr const char* kWorkspaceCreated = "dsplacer_workspace_created_total";

// ---- async network front end (src/net/) ----
// Fed by the epoll event loop dsplacerd runs by default (docs/SERVER.md).
// `epoll_wakeups_total` counts epoll_wait returns — wakeups per reply is
// the loop's batching efficiency. The buffer-pool pair mirrors the
// workspace-pool pair: `created` plateauing at the high-watermark while
// `acquired` climbs is the flat-memory signal the 1k-client soak asserts.
inline constexpr const char* kNetConnectionsOpen = "dsplacer_net_connections_open";
inline constexpr const char* kNetAccepts = "dsplacer_net_accepts_total";
inline constexpr const char* kNetEpollWakeups = "dsplacer_net_epoll_wakeups_total";
inline constexpr const char* kNetBufferPoolAcquired = "dsplacer_net_buffer_pool_acquired_total";
inline constexpr const char* kNetBufferPoolCreated = "dsplacer_net_buffer_pool_created_total";
inline constexpr const char* kNetWriteStallUs = "dsplacer_net_write_stall_us";

// ---- logging (src/util/log.cpp) ----
inline constexpr const char* kLogLines = "dsplacer_log_lines_total";

// ---- metrics plane itself (src/metrics/metrics_http.cpp) ----
inline constexpr const char* kScrapes = "dsplacer_metrics_scrapes_total";

}  // namespace metric
}  // namespace dsp
