#include "metrics/metrics_http.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"
#include "util/log.hpp"

namespace dsp {

namespace {

/// Largest request we will buffer before giving up on a client: a scrape
/// request line plus headers is a few hundred bytes; anything bigger is
/// hostile or broken.
constexpr size_t kMaxRequestBytes = 4096;

bool write_all(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string http_response(int status, const char* reason, const std::string& body,
                          const char* content_type) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// Extracts the request path from "GET /metrics HTTP/1.1\r\n..."; "" when
/// the request line is not a well-formed GET.
std::string request_path(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return "";
  const size_t end = request.find(' ', 4);
  if (end == std::string::npos) return "";
  return request.substr(4, end - 4);
}

}  // namespace

std::string MetricsHttpServer::start(int port, MetricsRegistry& registry,
                                     std::function<bool()> ready) {
  if (listen_fd_ >= 0) return "metrics listener already started";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket: ") + std::strerror(errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::string("bind 127.0.0.1:") + std::to_string(port) +
                            ": " + std::strerror(errno);
    ::close(fd);
    return err;
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return err;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  registry_ = &registry;
  ready_ = std::move(ready);
  thread_ = std::thread([this, fd] { serve_loop(fd); });
  LOG_INFO("metrics", "exposition up on 127.0.0.1:%d (/metrics /healthz /readyz)",
           port_);
  return "";
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocking accept; the fd is closed only after the
  // accept thread has joined, so the thread never touches a recycled fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  registry_ = nullptr;
  port_ = -1;
}

void MetricsHttpServer::serve_loop(int listen_fd) {
  set_log_thread_tag("metrics");
  Counter& scrapes = registry_->counter(
      metric::kScrapes, "Completed /metrics scrapes served over HTTP");
  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < kMaxRequestBytes) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }

    const std::string path = request_path(request);
    std::string response;
    if (path == "/metrics") {
      scrapes.inc();
      response = http_response(200, "OK", registry_->render_prometheus(),
                               "text/plain; version=0.0.4; charset=utf-8");
    } else if (path == "/healthz") {
      response = http_response(200, "OK", "ok\n", "text/plain");
    } else if (path == "/readyz") {
      const bool ready = !ready_ || ready_();
      response = ready ? http_response(200, "OK", "ready\n", "text/plain")
                       : http_response(503, "Service Unavailable", "draining\n",
                                       "text/plain");
    } else if (path.empty()) {
      response = http_response(400, "Bad Request", "bad request\n", "text/plain");
    } else {
      response = http_response(404, "Not Found", "not found\n", "text/plain");
    }
    write_all(conn, response);
    ::close(conn);
  }
}

std::string http_get(int port, const std::string& path, std::string* body,
                     int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket: ") + std::strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::string("connect 127.0.0.1:") +
                            std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return err;
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!write_all(fd, request)) {
    ::close(fd);
    return "send failed";
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (response.rfind("HTTP/1.1 ", 0) != 0 && response.rfind("HTTP/1.0 ", 0) != 0)
    return "malformed response";
  if (status != nullptr) *status = std::atoi(response.c_str() + 9);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return "truncated response";
  if (body != nullptr) *body = response.substr(header_end + 4);
  return "";
}

}  // namespace dsp
