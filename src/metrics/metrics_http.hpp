// Minimal HTTP/1.1 listener for the metrics plane (docs/METRICS.md):
// serves the Prometheus text exposition of a MetricsRegistry plus liveness
// and readiness probes, loopback-only by design (like the job listeners in
// server/socket.hpp, dsplacerd never binds a routable address).
//
//   GET /metrics  -> 200, text/plain; version=0.0.4 exposition
//   GET /healthz  -> 200 "ok" while the process is up
//   GET /readyz   -> 200 "ready" while the ready callback returns true,
//                    else 503 "draining" (dsplacerd wires this to
//                    "running and not draining")
//   anything else -> 404
//
// The implementation is deliberately tiny: one accept thread, one
// short-lived connection at a time (scrapes are rare and small), a capped
// request read, connection closed after each response. It exists so an
// operator can point Prometheus / curl at a running dsplacerd without any
// third-party HTTP dependency.
#pragma once

#include <functional>
#include <string>
#include <thread>

namespace dsp {

class MetricsRegistry;

class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept thread. `ready` backs /readyz; nullptr means always ready.
  /// Returns "" on success, else the bind error.
  std::string start(int port, MetricsRegistry& registry,
                    std::function<bool()> ready = nullptr);

  /// Actual bound port after start(); -1 before.
  int port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Closes the listener and joins the accept thread. Idempotent.
  void stop();

 private:
  // The fd is passed by value: the accept thread must never read the
  // mutable member, which stop() rewrites from another thread.
  void serve_loop(int listen_fd);

  int listen_fd_ = -1;
  int port_ = -1;
  MetricsRegistry* registry_ = nullptr;
  std::function<bool()> ready_;
  std::thread thread_;
};

/// One-shot loopback HTTP GET helper for tests, benchmarks, and the CI
/// smoke script: fetches http://127.0.0.1:port/path, stores the response
/// body in *body and the status code in *status. Returns "" on success,
/// else a transport diagnostic.
std::string http_get(int port, const std::string& path, std::string* body,
                     int* status);

}  // namespace dsp
