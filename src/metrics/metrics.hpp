// Live metrics plane: a process-global registry of monotone counters,
// gauges, and fixed-bucket histograms (docs/METRICS.md).
//
// Hot-path updates are sharded relaxed atomics: each thread hashes to one
// of kMetricShards cache-line-padded cells on first use, so concurrent
// kernels and server workers increment without contention and without
// locks — TSan-clean by construction. Reads merge the shards in fixed
// shard order. Because every stored quantity is an int64 (histogram
// observations included), the merge is associative and commutative: a
// snapshot taken after N updates is bit-identical regardless of how many
// threads performed them or which shards they landed in.
//
// Metric identity is the full name, optionally carrying Prometheus-style
// labels inline: `dsplacer_jobs_completed_total{status="ok"}`. The
// exposition splits the name at '{' so labeled families render correctly
// (`_bucket{status="ok",le="1000"}` for histograms). Registration is
// idempotent — the same name returns the same metric — so instrumented
// call sites just look up by name once and cache the pointer.
//
// Two read paths consume snapshots: the Prometheus text exposition served
// by MetricsHttpServer (metrics_http.hpp) and the STATS protocol frame
// (serialize_metrics_snapshot below; server/protocol.hpp carries it).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsp {

/// Number of update shards per metric. A power of two comfortably above
/// typical lane counts; threads are assigned round-robin so any thread
/// count spreads across the shards.
inline constexpr int kMetricShards = 16;

namespace detail {
/// This thread's shard index in [0, kMetricShards), assigned round-robin
/// on first use.
int metric_shard();

struct alignas(64) ShardCell {
  std::atomic<int64_t> v{0};
};
}  // namespace detail

/// Monotone counter. inc() is wait-free on the caller's shard; value()
/// merges shards in fixed order.
class Counter {
 public:
  void inc(int64_t delta = 1) {
    cells_[static_cast<size_t>(detail::metric_shard())].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  int64_t value() const {
    int64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<detail::ShardCell, kMetricShards> cells_;
};

/// Delta-tracked gauge (queue depths, in-flight counts): add()/sub() from
/// any thread; the value is the merged sum of all deltas. There is
/// deliberately no set() — absolute stores cannot be sharded without a
/// race, and every instrumented gauge is naturally a running delta.
class Gauge {
 public:
  void add(int64_t delta = 1) {
    cells_[static_cast<size_t>(detail::metric_shard())].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void sub(int64_t delta = 1) { add(-delta); }
  int64_t value() const {
    int64_t sum = 0;
    for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<detail::ShardCell, kMetricShards> cells_;
};

/// Fixed-bucket histogram over int64 observations (latencies in
/// microseconds). Bucket boundaries are upper bounds, strictly increasing,
/// fixed at construction; an implicit +Inf bucket catches the overflow.
/// Per-shard storage is (bounds + 1) bucket cells plus a sum cell, so
/// observe() is two relaxed adds after a branchless-ish linear scan
/// (bucket counts are small and fixed).
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> upper_bounds);

  void observe(int64_t value);

  const std::vector<int64_t>& upper_bounds() const { return bounds_; }
  /// Merged per-bucket counts, non-cumulative; size = bounds + 1 (+Inf last).
  std::vector<int64_t> bucket_counts() const;
  int64_t count() const;
  int64_t sum() const;

 private:
  std::vector<int64_t> bounds_;
  // cells_[shard * stride + bucket]; sums_[shard].
  size_t stride_;
  std::vector<detail::ShardCell> cells_;
  std::array<detail::ShardCell, kMetricShards> sums_;
};

/// Default latency buckets in microseconds: 1ms .. 10s, log-ish spacing.
const std::vector<int64_t>& default_latency_buckets_us();

enum class MetricType : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One metric's merged point-in-time value, as carried by the STATS frame
/// and rendered by the Prometheus exposition.
struct MetricSample {
  std::string name;  // full name, labels inline
  MetricType type = MetricType::kCounter;
  std::string help;
  int64_t value = 0;  // counter/gauge
  // Histogram only: parallel bound/count arrays (+Inf bucket last, bound
  // slot unused), plus the merged count and sum.
  std::vector<int64_t> bucket_bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  int64_t sum = 0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // registration order
};

/// The registry: named metrics, registered once, updated lock-free,
/// snapshotted under a short registration lock (updates never block).
/// Instantiable for tests; production code shares global_metrics().
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  // out-of-line: Entry is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent lookup-or-create. Re-registering an existing name returns
  /// the existing metric (help/buckets of the first registration win); a
  /// type conflict aborts — that is a programming error, not input.
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<int64_t>& upper_bounds);

  MetricsSnapshot snapshot() const;

  /// Prometheus text exposition format 0.0.4 of snapshot(): one HELP/TYPE
  /// header per base name (label variants grouped), histogram buckets
  /// cumulative with `le` labels.
  std::string render_prometheus() const;

 private:
  struct Entry;
  Entry& find_or_create(const std::string& name, MetricType type,
                        const std::string& help,
                        const std::vector<int64_t>* bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// The process-wide registry every subsystem instruments into.
MetricsRegistry& global_metrics();

/// Renders any snapshot (local or decoded from a STATS frame) in the
/// Prometheus text format — shared by the HTTP exporter and the
/// `dsplacer_stats` tool.
std::string render_prometheus(const MetricsSnapshot& snap);

/// Compact JSON rendering of a snapshot (dsplacer_stats --json).
std::string render_json(const MetricsSnapshot& snap);

/// STATS frame payload codec (util/binio encoding, truncation-safe on
/// decode like every other payload in the protocol). decode returns "" on
/// success, else a diagnostic and *out is unspecified.
std::string serialize_metrics_snapshot(const MetricsSnapshot& snap);
std::string deserialize_metrics_snapshot(std::string_view payload, MetricsSnapshot* out);

}  // namespace dsp
