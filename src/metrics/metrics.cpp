#include "metrics/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/binio.hpp"

namespace dsp {

namespace detail {

int metric_shard() {
  static std::atomic<int> next{0};
  thread_local int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace detail

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), stride_(bounds_.size() + 1) {
  // Enforce strictly increasing bounds so bucket search is well-defined.
  for (size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1]) {
      std::fprintf(stderr, "metrics: histogram bounds must be strictly increasing\n");
      std::abort();
    }
  cells_ = std::vector<detail::ShardCell>(stride_ * kMetricShards);
}

void Histogram::observe(int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  const size_t shard = static_cast<size_t>(detail::metric_shard());
  cells_[shard * stride_ + bucket].v.fetch_add(1, std::memory_order_relaxed);
  sums_[shard].v.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> counts(stride_, 0);
  for (size_t s = 0; s < kMetricShards; ++s)
    for (size_t b = 0; b < stride_; ++b)
      counts[b] += cells_[s * stride_ + b].v.load(std::memory_order_relaxed);
  return counts;
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

int64_t Histogram::sum() const {
  int64_t total = 0;
  for (const auto& c : sums_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

const std::vector<int64_t>& default_latency_buckets_us() {
  static const std::vector<int64_t> buckets = {
      1000,    5000,    10000,    25000,    50000,    100000,
      250000,  500000,  1000000,  2500000,  5000000,  10000000};
  return buckets;
}

// ---- MetricsRegistry -------------------------------------------------------

struct MetricsRegistry::Entry {
  std::string name;
  MetricType type;
  std::string help;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, MetricType type, const std::string& help,
    const std::vector<int64_t>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_)
    if (e->name == name) {
      if (e->type != type) {
        std::fprintf(stderr, "metrics: '%s' re-registered with a different type\n",
                     name.c_str());
        std::abort();
      }
      return *e;
    }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->type = type;
  e->help = help;
  switch (type) {
    case MetricType::kCounter: e->counter = std::make_unique<Counter>(); break;
    case MetricType::kGauge: e->gauge = std::make_unique<Gauge>(); break;
    case MetricType::kHistogram:
      e->histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  return *find_or_create(name, MetricType::kCounter, help, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  return *find_or_create(name, MetricType::kGauge, help, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      const std::vector<int64_t>& upper_bounds) {
  return *find_or_create(name, MetricType::kHistogram, help, &upper_bounds).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.type = e->type;
    s.help = e->help;
    switch (e->type) {
      case MetricType::kCounter: s.value = e->counter->value(); break;
      case MetricType::kGauge: s.value = e->gauge->value(); break;
      case MetricType::kHistogram: {
        s.bucket_bounds = e->histogram->upper_bounds();
        s.bucket_bounds.push_back(0);  // +Inf slot; bound value unused
        s.bucket_counts = e->histogram->bucket_counts();
        s.count = e->histogram->count();
        s.sum = e->histogram->sum();
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsRegistry::render_prometheus() const { return dsp::render_prometheus(snapshot()); }

MetricsRegistry& global_metrics() {
  // Intentionally leaked: the process-global ThreadPool (and its workers)
  // update metrics while draining during static destruction, which can run
  // after a function-local registry's destructor. A never-destroyed
  // registry makes every update safe for the whole process lifetime.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

// ---- renderings ------------------------------------------------------------

namespace {

/// Splits "base{labels}" into its base name and the labels ("" when none).
void split_labels(const std::string& name, std::string* base, std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string prev_base;
  for (const MetricSample& s : snap.samples) {
    std::string base, labels;
    split_labels(s.name, &base, &labels);
    if (base != prev_base) {
      // One HELP/TYPE header per family; label variants registered
      // consecutively share it.
      out += "# HELP " + base + " " + s.help + "\n";
      out += "# TYPE " + base + " " + type_name(s.type) + "\n";
      prev_base = base;
    }
    if (s.type != MetricType::kHistogram) {
      out += base + (labels.empty() ? "" : "{" + labels + "}") + " " +
             std::to_string(s.value) + "\n";
      continue;
    }
    const std::string sep = labels.empty() ? "" : labels + ",";
    int64_t cumulative = 0;
    for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
      cumulative += s.bucket_counts[b];
      const bool inf = b + 1 == s.bucket_counts.size();
      const std::string le = inf ? "+Inf" : std::to_string(s.bucket_bounds[b]);
      out += base + "_bucket{" + sep + "le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += base + "_sum" + (labels.empty() ? "" : "{" + labels + "}") + " " +
           std::to_string(s.sum) + "\n";
    out += base + "_count" + (labels.empty() ? "" : "{" + labels + "}") + " " +
           std::to_string(s.count) + "\n";
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snap) {
  std::string out = "{\n";
  for (size_t i = 0; i < snap.samples.size(); ++i) {
    const MetricSample& s = snap.samples[i];
    out += "  \"" + json_escape(s.name) + "\": {\"type\": \"" +
           type_name(s.type) + "\", ";
    if (s.type != MetricType::kHistogram) {
      out += "\"value\": " + std::to_string(s.value) + "}";
    } else {
      out += "\"count\": " + std::to_string(s.count) +
             ", \"sum\": " + std::to_string(s.sum) + ", \"buckets\": [";
      for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
        if (b != 0) out += ", ";
        const bool inf = b + 1 == s.bucket_counts.size();
        out += "{\"le\": " + (inf ? std::string("\"+Inf\"")
                                  : std::to_string(s.bucket_bounds[b])) +
               ", \"n\": " + std::to_string(s.bucket_counts[b]) + "}";
      }
      out += "]}";
    }
    out += i + 1 < snap.samples.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

// ---- STATS frame payload codec ---------------------------------------------

std::string serialize_metrics_snapshot(const MetricsSnapshot& snap) {
  ByteWriter w;
  w.u64(snap.samples.size());
  for (const MetricSample& s : snap.samples) {
    w.str(s.name);
    w.u8(static_cast<uint8_t>(s.type));
    w.str(s.help);
    if (s.type != MetricType::kHistogram) {
      w.i64(s.value);
      continue;
    }
    w.i64(s.count);
    w.i64(s.sum);
    w.u64(s.bucket_counts.size());
    for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
      w.i64(b < s.bucket_bounds.size() ? s.bucket_bounds[b] : 0);
      w.i64(s.bucket_counts[b]);
    }
  }
  return w.take();
}

std::string deserialize_metrics_snapshot(std::string_view payload,
                                         MetricsSnapshot* out) {
  ByteReader r(payload);
  const uint64_t n = r.u64();
  // Each sample needs at least name-len + type + help-len + value bytes.
  if (!r.fits(n, 8 + 1 + 8 + 8)) return "truncated stats payload";
  out->samples.clear();
  out->samples.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    MetricSample s;
    s.name = r.str();
    const uint8_t type = r.u8();
    s.help = r.str();
    if (type > static_cast<uint8_t>(MetricType::kHistogram))
      return "unknown metric type " + std::to_string(type);
    s.type = static_cast<MetricType>(type);
    if (s.type != MetricType::kHistogram) {
      s.value = r.i64();
    } else {
      s.count = r.i64();
      s.sum = r.i64();
      const uint64_t buckets = r.u64();
      if (!r.fits(buckets, 16)) return "truncated stats payload";
      s.bucket_bounds.reserve(static_cast<size_t>(buckets));
      s.bucket_counts.reserve(static_cast<size_t>(buckets));
      for (uint64_t b = 0; b < buckets; ++b) {
        s.bucket_bounds.push_back(r.i64());
        s.bucket_counts.push_back(r.i64());
      }
    }
    if (r.fail()) return "truncated stats payload";
    out->samples.push_back(std::move(s));
  }
  if (!r.done()) return "truncated stats payload";
  return "";
}

}  // namespace dsp
