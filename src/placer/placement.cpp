#include "placer/placement.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

namespace dsp {

Placement::Placement(const Netlist& nl, const Device& dev) {
  const size_t n = static_cast<size_t>(nl.num_cells());
  x_.assign(n, dev.width() / 2.0);
  y_.assign(n, dev.height() / 2.0);
  dsp_site_.assign(n, -1);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    if (cell.fixed) {
      x_[static_cast<size_t>(c)] = cell.fixed_x;
      y_[static_cast<size_t>(c)] = cell.fixed_y;
    }
  }
}

void Placement::assign_dsp_site(const Device& dev, CellId c, int site) {
  dsp_site_[static_cast<size_t>(c)] = site;
  const DspSite& s = dev.dsp_site(site);
  x_[static_cast<size_t>(c)] = s.x;
  y_[static_cast<size_t>(c)] = s.y;
}

std::string Placement::validate_dsp(const Netlist& nl, const Device& dev) const {
  std::ostringstream err;
  std::unordered_map<int, CellId> occupied;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(c).type != CellType::kDsp) continue;
    const int site = dsp_site_[static_cast<size_t>(c)];
    if (site < 0) {
      err << "DSP " << nl.cell(c).name << " unassigned\n";
      continue;
    }
    if (site >= dev.dsp_capacity()) {
      err << "DSP " << nl.cell(c).name << " assigned to invalid site " << site << '\n';
      continue;
    }
    auto [it, inserted] = occupied.emplace(site, c);
    if (!inserted)
      err << "site " << site << " shared by " << nl.cell(it->second).name << " and "
          << nl.cell(c).name << '\n';
  }
  for (int ci = 0; ci < nl.num_chains(); ++ci) {
    const auto& chain = nl.chain(ci).cells;
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      const int sp = dsp_site_[static_cast<size_t>(chain[k])];
      const int ss = dsp_site_[static_cast<size_t>(chain[k + 1])];
      if (sp < 0 || ss < 0) continue;  // reported above
      const DspSite& a = dev.dsp_site(sp);
      const DspSite& b = dev.dsp_site(ss);
      if (a.column != b.column || b.row != a.row + 1)
        err << "chain " << ci << ": " << nl.cell(chain[k]).name << " -> "
            << nl.cell(chain[k + 1]).name << " not cascade-adjacent\n";
    }
  }
  return err.str();
}

double Placement::distance(CellId a, CellId b) const {
  const double dx = x(a) - x(b);
  const double dy = y(a) - y(b);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace dsp
