#include "placer/qplace.hpp"

#include <cassert>
#include <cmath>

#include "util/log.hpp"

namespace dsp {
namespace {

// Sparse symmetric system assembled from quadratic net models:
//   movable-movable terms form the Laplacian part,
//   movable-fixed terms contribute to the diagonal and the rhs.
struct QuadSystem {
  int n = 0;  // movable unknowns (original movables + star nodes)
  std::vector<double> diag;
  std::vector<std::vector<std::pair<int, double>>> off;  // off-diagonal entries
  std::vector<double> rhs_x;
  std::vector<double> rhs_y;

  explicit QuadSystem(int unknowns)
      : n(unknowns),
        diag(static_cast<size_t>(unknowns), 0.0),
        off(static_cast<size_t>(unknowns)),
        rhs_x(static_cast<size_t>(unknowns), 0.0),
        rhs_y(static_cast<size_t>(unknowns), 0.0) {}

  void add_pair(int a, int b, double w) {
    diag[static_cast<size_t>(a)] += w;
    diag[static_cast<size_t>(b)] += w;
    off[static_cast<size_t>(a)].push_back({b, -w});
    off[static_cast<size_t>(b)].push_back({a, -w});
  }

  void add_anchor(int a, double w, double fx, double fy) {
    diag[static_cast<size_t>(a)] += w;
    rhs_x[static_cast<size_t>(a)] += w * fx;
    rhs_y[static_cast<size_t>(a)] += w * fy;
  }

  void apply(const std::vector<double>& v, std::vector<double>& out) const {
    for (int i = 0; i < n; ++i) {
      double s = diag[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
      for (const auto& [j, w] : off[static_cast<size_t>(i)]) s += w * v[static_cast<size_t>(j)];
      out[static_cast<size_t>(i)] = s;
    }
  }

  // Jacobi-preconditioned CG.
  void solve(const std::vector<double>& rhs, std::vector<double>& x, int max_iters,
             double tol) const {
    std::vector<double> r(static_cast<size_t>(n)), z(static_cast<size_t>(n)),
        p(static_cast<size_t>(n)), ap(static_cast<size_t>(n));
    apply(x, ap);
    double rr = 0.0;
    for (int i = 0; i < n; ++i) {
      r[static_cast<size_t>(i)] = rhs[static_cast<size_t>(i)] - ap[static_cast<size_t>(i)];
      const double d = diag[static_cast<size_t>(i)] > 1e-12 ? diag[static_cast<size_t>(i)] : 1.0;
      z[static_cast<size_t>(i)] = r[static_cast<size_t>(i)] / d;
      p[static_cast<size_t>(i)] = z[static_cast<size_t>(i)];
      rr += r[static_cast<size_t>(i)] * z[static_cast<size_t>(i)];
    }
    const double rr0 = rr;
    if (rr0 < 1e-20) return;
    for (int it = 0; it < max_iters && rr > tol * tol * rr0; ++it) {
      apply(p, ap);
      double pap = 0.0;
      for (int i = 0; i < n; ++i) pap += p[static_cast<size_t>(i)] * ap[static_cast<size_t>(i)];
      if (pap <= 1e-20) break;
      const double alpha = rr / pap;
      double rr_new = 0.0;
      for (int i = 0; i < n; ++i) {
        x[static_cast<size_t>(i)] += alpha * p[static_cast<size_t>(i)];
        r[static_cast<size_t>(i)] -= alpha * ap[static_cast<size_t>(i)];
        const double d = diag[static_cast<size_t>(i)] > 1e-12 ? diag[static_cast<size_t>(i)] : 1.0;
        z[static_cast<size_t>(i)] = r[static_cast<size_t>(i)] / d;
        rr_new += r[static_cast<size_t>(i)] * z[static_cast<size_t>(i)];
      }
      const double beta = rr_new / rr;
      rr = rr_new;
      for (int i = 0; i < n; ++i)
        p[static_cast<size_t>(i)] = z[static_cast<size_t>(i)] + beta * p[static_cast<size_t>(i)];
    }
  }
};

}  // namespace

void quadratic_place(const Netlist& nl, const Device& dev, Placement& pl,
                     const QPlaceOptions& opts) {
  const int n_cells = nl.num_cells();

  // Movable index per cell, -1 for fixed/frozen.
  std::vector<int> movable_idx(static_cast<size_t>(n_cells), -1);
  int n_movable = 0;
  for (CellId c = 0; c < n_cells; ++c) {
    const Cell& cell = nl.cell(c);
    const bool frozen_dsp =
        opts.freeze_dsps && cell.type == CellType::kDsp && pl.dsp_site(c) >= 0;
    if (!cell.fixed && !frozen_dsp) movable_idx[static_cast<size_t>(c)] = n_movable++;
  }
  if (n_movable == 0) return;

  // Star nodes for big nets come after the movables.
  int n_star = 0;
  for (NetId i = 0; i < nl.num_nets(); ++i)
    if (nl.net(i).degree() > opts.clique_limit) ++n_star;

  QuadSystem sys(n_movable + n_star);
  int next_star = n_movable;

  auto add_connection = [&](CellId a, CellId b, double w) {
    const int ia = movable_idx[static_cast<size_t>(a)];
    const int ib = movable_idx[static_cast<size_t>(b)];
    if (ia >= 0 && ib >= 0) {
      if (ia != ib) sys.add_pair(ia, ib, w);
    } else if (ia >= 0) {
      sys.add_anchor(ia, w * opts.anchor_weight, pl.x(b), pl.y(b));
    } else if (ib >= 0) {
      sys.add_anchor(ib, w * opts.anchor_weight, pl.x(a), pl.y(a));
    }
  };

  for (NetId i = 0; i < nl.num_nets(); ++i) {
    const Net& net = nl.net(i);
    const int p = net.degree();
    if (p < 2) continue;
    std::vector<CellId> pins;
    pins.reserve(static_cast<size_t>(p));
    pins.push_back(net.driver);
    pins.insert(pins.end(), net.sinks.begin(), net.sinks.end());
    double w = net.weight;
    if (opts.net_weight_scale != nullptr)
      w *= (*opts.net_weight_scale)[static_cast<size_t>(i)];
    if (p <= opts.clique_limit) {
      const double cw = w / (p - 1);
      for (size_t a = 0; a < pins.size(); ++a)
        for (size_t b = a + 1; b < pins.size(); ++b) add_connection(pins[a], pins[b], cw);
    } else {
      // Star model: one auxiliary movable node connected to every pin.
      const int star = next_star++;
      const double sw = w * static_cast<double>(p) / (p - 1);
      for (CellId pin : pins) {
        const int ip = movable_idx[static_cast<size_t>(pin)];
        if (ip >= 0) {
          sys.add_pair(ip, star, sw);
        } else {
          sys.add_anchor(star, sw, pl.x(pin), pl.y(pin));
        }
      }
    }
  }

  if (opts.pseudo_anchor_weight > 0.0) {
    for (CellId c = 0; c < n_cells; ++c) {
      const int i = movable_idx[static_cast<size_t>(c)];
      if (i >= 0) sys.add_anchor(i, opts.pseudo_anchor_weight, pl.x(c), pl.y(c));
    }
  }

  // Initial guess: current positions; star nodes start at net centroids
  // (approximated by the device center; CG fixes them quickly).
  std::vector<double> x(static_cast<size_t>(sys.n), dev.width() / 2.0);
  std::vector<double> y(static_cast<size_t>(sys.n), dev.height() / 2.0);
  for (CellId c = 0; c < n_cells; ++c) {
    const int i = movable_idx[static_cast<size_t>(c)];
    if (i >= 0) {
      x[static_cast<size_t>(i)] = pl.x(c);
      y[static_cast<size_t>(i)] = pl.y(c);
    }
  }

  sys.solve(sys.rhs_x, x, opts.max_cg_iters, opts.cg_tolerance);
  sys.solve(sys.rhs_y, y, opts.max_cg_iters, opts.cg_tolerance);

  for (CellId c = 0; c < n_cells; ++c) {
    const int i = movable_idx[static_cast<size_t>(c)];
    if (i >= 0)
      pl.set(c, dev.clamp_x(x[static_cast<size_t>(i)]), dev.clamp_y(y[static_cast<size_t>(i)]));
  }
  LOG_DEBUG("qplace", "solved %d movables (+%d star nodes)", n_movable, n_star);
}

}  // namespace dsp
