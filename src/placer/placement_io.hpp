// Full-placement serialization: cell coordinates plus DSP sites in a
// text format, for checkpointing flows and for the CLI's place/report
// split. Round-trip safe with the owning netlist.
#pragma once

#include <string>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"

namespace dsp {

/// One line per cell: `<name> <x> <y> [site=<n>]`.
std::string write_placement(const Netlist& nl, const Placement& pl);

/// Parses write_placement output against `nl`. Throws std::runtime_error
/// with a line number on malformed input or unknown cells.
Placement read_placement(const Netlist& nl, const Device& dev, const std::string& text);

bool save_placement(const Netlist& nl, const Placement& pl, const std::string& path);
Placement load_placement(const Netlist& nl, const Device& dev, const std::string& path);

class ByteWriter;
class ByteReader;

/// Binary (little-endian) placement record for stage checkpoints
/// (docs/TRACE_FORMAT.md): cell count, then per-cell x/y bit patterns and
/// DSP site. Bit-exact round trip, unlike the text format's decimal
/// printing.
void write_placement_binary(const Placement& pl, ByteWriter& w);

/// Reads a write_placement_binary record against `nl`/`dev`. Returns "" on
/// success or a diagnostic (cell-count mismatch, site out of range,
/// truncated input); on failure `*pl` is left unspecified but sized.
std::string read_placement_binary(ByteReader& r, const Netlist& nl, const Device& dev,
                                  Placement* pl);

}  // namespace dsp
