// Full-placement serialization: cell coordinates plus DSP sites in a
// text format, for checkpointing flows and for the CLI's place/report
// split. Round-trip safe with the owning netlist.
#pragma once

#include <string>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"

namespace dsp {

/// One line per cell: `<name> <x> <y> [site=<n>]`.
std::string write_placement(const Netlist& nl, const Placement& pl);

/// Parses write_placement output against `nl`. Throws std::runtime_error
/// with a line number on malformed input or unknown cells.
Placement read_placement(const Netlist& nl, const Device& dev, const std::string& text);

bool save_placement(const Netlist& nl, const Placement& pl, const std::string& path);
Placement load_placement(const Netlist& nl, const Device& dev, const std::string& path);

}  // namespace dsp
