// Baseline DSP legalizers standing in for the comparison tools of Table II.
//
//  * kVivadoLike — displacement-driven: each cascade chain goes to the free
//    column segment nearest its analytical centroid. Cascades are legal and
//    placement tracks wirelength, but no datapath ordering is attempted —
//    Vivado 2020.2's qualitative behavior in the paper.
//  * kAmfLike — cluster-compact: chains are packed into the fewest columns
//    around the DSP centroid in an order unrelated to dataflow (the paper's
//    Fig. 9(b): "compact layout ... fails to maintain the datapath
//    information between PS and PL, resulting in a disordered datapath").
#pragma once

#include <cstdint>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"

namespace dsp {

enum class DspBaselineMode { kVivadoLike, kAmfLike };

struct DspBaselineOptions {
  DspBaselineMode mode = DspBaselineMode::kVivadoLike;
  uint64_t seed = 0x7ace;
  /// When true, DSPs that already hold a site keep it (their sites are
  /// marked occupied) and only the rest are placed — how DSPlacer hands
  /// control DSPs back to the host flow after fixing the datapath DSPs.
  bool only_unassigned = false;
};

/// Assigns every DSP cell (datapath and control) to a legal site honoring
/// cascade constraints. Starts from the continuous positions in `pl`.
/// Returns false if the device lacks capacity (never for our benchmarks).
bool legalize_dsps_baseline(const Netlist& nl, const Device& dev, Placement& pl,
                            const DspBaselineOptions& opts = {});

}  // namespace dsp
