#include "placer/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace dsp {
namespace {

struct TileLoad {
  int luts = 0;
  int ffs = 0;
  int carries = 0;
};

class TileGrid {
 public:
  TileGrid(const Device& dev) : dev_(dev), load_(static_cast<size_t>(dev.width()) * dev.height()) {}

  /// Tries to put a cell of `type` into tile (tx, ty); true on success.
  bool try_place(int tx, int ty, CellType type) {
    if (tx < 0 || tx >= dev_.width() || ty < 0 || ty >= dev_.height()) return false;
    if (!dev_.is_logic_column(tx)) return false;
    if (type == CellType::kLutRam && dev_.column_type(tx) != ColumnType::kClbM) return false;
    TileLoad& tl = load_[static_cast<size_t>(ty) * dev_.width() + tx];
    const ClbCapacity& cap = dev_.clb_capacity();
    switch (type) {
      case CellType::kLut:
      case CellType::kLutRam:
        if (tl.luts >= cap.luts_per_tile) return false;
        ++tl.luts;
        return true;
      case CellType::kFlipFlop:
        if (tl.ffs >= cap.ffs_per_tile) return false;
        ++tl.ffs;
        return true;
      case CellType::kCarry:
        if (tl.carries >= cap.carries_per_tile) return false;
        ++tl.carries;
        return true;
      default:
        return false;
    }
  }

 private:
  const Device& dev_;
  std::vector<TileLoad> load_;
};

}  // namespace

LegalizeStats legalize_logic(const Netlist& nl, const Device& dev, Placement& pl) {
  LegalizeStats stats;
  TileGrid grid(dev);

  // Deterministic order: row-major by current position so displacement is
  // locally bounded; FFs after LUTs so LUT slots (the scarcer budget at 8
  // vs 16 per tile) get first pick.
  std::vector<CellId> logic_cells;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    if (cell.fixed) continue;
    if (cell.type == CellType::kLut || cell.type == CellType::kLutRam ||
        cell.type == CellType::kFlipFlop || cell.type == CellType::kCarry)
      logic_cells.push_back(c);
  }
  std::sort(logic_cells.begin(), logic_cells.end(), [&](CellId a, CellId b) {
    const bool a_lut = nl.cell(a).type != CellType::kFlipFlop;
    const bool b_lut = nl.cell(b).type != CellType::kFlipFlop;
    if (a_lut != b_lut) return a_lut;
    if (pl.y(a) != pl.y(b)) return pl.y(a) < pl.y(b);
    return pl.x(a) < pl.x(b);
  });

  auto record_move = [&](CellId c, double nx, double ny) {
    const double d = std::hypot(pl.x(c) - nx, pl.y(c) - ny);
    if (d > 1e-9) {
      stats.total_displacement += d;
      stats.max_displacement = std::max(stats.max_displacement, d);
      ++stats.cells_moved;
    }
    pl.set(c, nx, ny);
  };

  for (CellId c : logic_cells) {
    const int tx0 = static_cast<int>(dev.clamp_x(pl.x(c)));
    const int ty0 = static_cast<int>(dev.clamp_y(pl.y(c)));
    bool placed = false;
    // Ring search by Chebyshev radius.
    const int max_r = std::max(dev.width(), dev.height());
    for (int r = 0; r <= max_r && !placed; ++r) {
      for (int dy = -r; dy <= r && !placed; ++dy) {
        for (int dx = -r; dx <= r && !placed; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != r) continue;  // ring only
          if (grid.try_place(tx0 + dx, ty0 + dy, nl.cell(c).type)) {
            record_move(c, tx0 + dx + 0.5, ty0 + dy + 0.5);
            placed = true;
          }
        }
      }
    }
    // If the fabric is genuinely full the cell keeps its continuous spot;
    // generated designs stay within capacity so this is unreachable.
  }

  // BRAM legalization: nearest free site per cell, processed bottom-up.
  std::vector<CellId> brams = nl.cells_of_type(CellType::kBram);
  std::sort(brams.begin(), brams.end(),
            [&](CellId a, CellId b) { return pl.y(a) < pl.y(b); });
  std::vector<std::vector<char>> bram_used;
  for (const auto& col : dev.bram_columns())
    bram_used.emplace_back(static_cast<size_t>(col.num_sites), 0);
  for (CellId c : brams) {
    double best_d = 1e18;
    int best_col = -1, best_row = -1;
    for (size_t ci = 0; ci < dev.bram_columns().size(); ++ci) {
      const auto& col = dev.bram_columns()[ci];
      for (int r = 0; r < col.num_sites; ++r) {
        if (bram_used[ci][static_cast<size_t>(r)]) continue;
        const auto [sx, sy] = dev.bram_site_xy(static_cast<int>(ci), r);
        const double d = std::hypot(pl.x(c) - sx, pl.y(c) - sy);
        if (d < best_d) {
          best_d = d;
          best_col = static_cast<int>(ci);
          best_row = r;
        }
      }
    }
    if (best_col >= 0) {
      bram_used[static_cast<size_t>(best_col)][static_cast<size_t>(best_row)] = 1;
      const auto [sx, sy] = dev.bram_site_xy(best_col, best_row);
      record_move(c, sx, sy);
    }
  }
  return stats;
}

}  // namespace dsp
