// The "off-the-shelf FPGA placement tool" of the paper's flow (Fig. 2).
//
// HostPlacer produces the prototype placement (global quadratic place +
// spread + legalize, then a baseline DSP legalization), and re-places the
// non-DSP logic around frozen DSP sites during DSPlacer's incremental
// alternation (Fig. 6). Two modes mimic the two comparison tools:
// kVivadoLike (more global iterations, balanced spreading) and kAmfLike
// (fewer iterations, tighter packing, cluster-compact DSPs).
#pragma once

#include <cstdint>
#include <vector>

#include "placer/detail_refine.hpp"
#include "placer/dsp_baseline.hpp"
#include "placer/legalizer.hpp"
#include "placer/qplace.hpp"
#include "placer/spreader.hpp"
#include "util/trace.hpp"

namespace dsp {

enum class HostMode { kVivadoLike, kAmfLike };

struct HostPlacerOptions {
  HostMode mode = HostMode::kVivadoLike;
  int global_iterations = 3;  // quadratic-solve + spread rounds
  QPlaceOptions qplace;
  SpreaderOptions spread;
  bool detail_refine = false;  // post-legalization move/swap cleanup
  RefineOptions refine;
  /// Timing-driven refinement rounds: after the wirelength flow, run STA,
  /// boost the weights of nets on failing paths, and re-place. 0 = off
  /// (pure wirelength, the calibrated Table II baseline behavior).
  int timing_driven_iterations = 0;
  double timing_target_mhz = 300.0;  // STA clock for criticality extraction
  double critical_net_boost = 3.0;   // weight multiplier per round (capped)
  uint64_t seed = 0xfab;

  static HostPlacerOptions vivado_like();
  static HostPlacerOptions amf_like();
};

class HostPlacer {
 public:
  HostPlacer(const Netlist& nl, const Device& dev, HostPlacerOptions opts = {});

  /// Full flow: global placement, spreading, logic legalization, and the
  /// mode's baseline DSP legalization. This is the "prototype placement".
  Placement place_full();

  /// Re-places all non-DSP logic around the (frozen) DSP sites already
  /// assigned in `pl` — one half of DSPlacer's incremental iteration.
  void replace_others(Placement& pl);

  const HostPlacerOptions& options() const { return opts_; }

  /// Timing-driven net-weight state accumulated by place_full. Snapshotted
  /// and restored by the stage checkpoint cache so a flow resumed from a
  /// cached prototype replays replace_others identically.
  const std::vector<double>& net_weight_scale() const { return net_weight_scale_; }
  void set_net_weight_scale(std::vector<double> scale) {
    net_weight_scale_ = std::move(scale);
  }

  /// Optional instrumentation: sub-steps (global+spread, legalize, DSP
  /// baseline, timing rounds) are recorded as children of the trace's
  /// current stage. The trace must outlive the placer. nullptr disables.
  void set_trace(RunTrace* trace) { trace_ = trace; }

 private:
  void global_and_legalize(Placement& pl, bool freeze_dsps);
  /// One timing-driven round: STA -> boost weights of nets feeding failing
  /// endpoints -> re-place (DSPs re-legalized by the caller's mode).
  void timing_driven_round(Placement& pl);

  const Netlist& nl_;
  const Device& dev_;
  HostPlacerOptions opts_;
  std::vector<double> net_weight_scale_;
  RunTrace* trace_ = nullptr;
};

}  // namespace dsp
