// Density spreading for the quadratic placement solution.
//
// Pure quadratic placement collapses cells toward anchors; this pass
// diffuses overfull bins outward so the downstream legalizer has slack to
// find nearby sites. Standard bin-based cell shifting, a few iterations.
#pragma once

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"

namespace dsp {

struct SpreaderOptions {
  int bin_size = 3;          // fabric tiles per bin edge
  double target_util = 0.8;  // spread until bins are below this utilization
  int iterations = 24;       // diffusion rounds (cells travel 1 bin/round)
  bool move_dsps = true;     // false during DSPlacer's incremental re-place
};

/// Spreads movable LUT/FF/CARRY/LUTRAM (and optionally DSP/BRAM) cells.
void spread_cells(const Netlist& nl, const Device& dev, Placement& pl,
                  const SpreaderOptions& opts = {});

}  // namespace dsp
