#include "placer/detail_refine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "timing/wirelength.hpp"

namespace dsp {
namespace {

enum class SlotClass { kLut, kFf, kCarry, kNone };

SlotClass slot_class(const Cell& c) {
  if (c.fixed) return SlotClass::kNone;
  switch (c.type) {
    case CellType::kLut:
    case CellType::kLutRam:
      return SlotClass::kLut;
    case CellType::kFlipFlop:
      return SlotClass::kFf;
    case CellType::kCarry:
      return SlotClass::kCarry;
    default:
      return SlotClass::kNone;
  }
}

struct TileLoad {
  int luts = 0;
  int ffs = 0;
  int carries = 0;

  int& of(SlotClass cls) {
    switch (cls) {
      case SlotClass::kLut: return luts;
      case SlotClass::kFf: return ffs;
      default: return carries;
    }
  }
};

}  // namespace

RefineStats refine_detail(const Netlist& nl, const Device& dev, Placement& pl,
                          const RefineOptions& opts) {
  RefineStats stats;
  const int w = dev.width();
  const int h = dev.height();
  std::vector<TileLoad> load(static_cast<size_t>(w) * h);
  std::vector<std::vector<CellId>> tile_cells(static_cast<size_t>(w) * h);

  auto tile_of = [&](CellId c) {
    const int tx = std::clamp(static_cast<int>(pl.x(c)), 0, w - 1);
    const int ty = std::clamp(static_cast<int>(pl.y(c)), 0, h - 1);
    return std::make_pair(tx, ty);
  };
  auto idx = [&](int tx, int ty) { return static_cast<size_t>(ty) * w + tx; };

  std::vector<CellId> movable;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const SlotClass cls = slot_class(nl.cell(c));
    if (cls == SlotClass::kNone) continue;
    movable.push_back(c);
    const auto [tx, ty] = tile_of(c);
    load[idx(tx, ty)].of(cls) += 1;
    tile_cells[idx(tx, ty)].push_back(c);
  }

  auto capacity_of = [&](SlotClass cls) {
    switch (cls) {
      case SlotClass::kLut: return dev.clb_capacity().luts_per_tile;
      case SlotClass::kFf: return dev.clb_capacity().ffs_per_tile;
      default: return dev.clb_capacity().carries_per_tile;
    }
  };
  auto tile_legal_for = [&](int tx, int ty, const Cell& cell) {
    if (!dev.is_logic_column(tx)) return false;
    if (cell.type == CellType::kLutRam && dev.column_type(tx) != ColumnType::kClbM)
      return false;
    return ty >= 0 && ty < h;
  };

  // HPWL of all nets touching `c` at the current positions.
  auto incident_hpwl = [&](CellId c) {
    double sum = 0;
    for (NetId n : nl.nets_driven_by(c)) sum += net_hpwl(nl, pl, n);
    for (NetId n : nl.nets_sinking(c)) sum += net_hpwl(nl, pl, n);
    return sum;
  };

  for (int pass = 0; pass < opts.passes; ++pass) {
    bool improved = false;
    for (CellId c : movable) {
      const Cell& cell = nl.cell(c);
      const SlotClass cls = slot_class(cell);
      const auto [cx, cy] = tile_of(c);
      const double old_x = pl.x(c), old_y = pl.y(c);
      const double before = incident_hpwl(c);

      double best_gain = opts.min_gain;
      int best_tx = -1, best_ty = -1;
      CellId best_swap = kInvalidCell;

      for (int dy = -opts.window; dy <= opts.window; ++dy) {
        for (int dx = -opts.window; dx <= opts.window; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int tx = cx + dx, ty = cy + dy;
          if (tx < 0 || tx >= w || ty < 0 || ty >= h) continue;
          if (!tile_legal_for(tx, ty, cell)) continue;

          if (load[idx(tx, ty)].of(cls) < capacity_of(cls)) {
            // Free slot: evaluate a plain move.
            pl.set(c, tx + 0.5, ty + 0.5);
            const double gain = before - incident_hpwl(c);
            pl.set(c, old_x, old_y);
            if (gain > best_gain) {
              best_gain = gain;
              best_tx = tx;
              best_ty = ty;
              best_swap = kInvalidCell;
            }
          } else {
            // Full tile: try swapping with a same-class occupant.
            for (CellId other : tile_cells[idx(tx, ty)]) {
              if (slot_class(nl.cell(other)) != cls) continue;
              if (nl.cell(other).type == CellType::kLutRam &&
                  dev.column_type(cx) != ColumnType::kClbM)
                continue;
              if (cell.type == CellType::kLutRam &&
                  dev.column_type(tx) != ColumnType::kClbM)
                continue;
              const double ox = pl.x(other), oy = pl.y(other);
              const double before_both = before + incident_hpwl(other);
              pl.set(c, ox, oy);
              pl.set(other, old_x, old_y);
              const double after_both = incident_hpwl(c) + incident_hpwl(other);
              pl.set(c, old_x, old_y);
              pl.set(other, ox, oy);
              const double gain = before_both - after_both;
              if (gain > best_gain) {
                best_gain = gain;
                best_tx = tx;
                best_ty = ty;
                best_swap = other;
              }
              break;  // one candidate per tile keeps the pass linear-ish
            }
          }
        }
      }

      if (best_tx < 0) continue;
      improved = true;
      stats.hpwl_gain += best_gain;
      auto& from_list = tile_cells[idx(cx, cy)];
      if (best_swap == kInvalidCell) {
        pl.set(c, best_tx + 0.5, best_ty + 0.5);
        load[idx(cx, cy)].of(cls) -= 1;
        load[idx(best_tx, best_ty)].of(cls) += 1;
        from_list.erase(std::find(from_list.begin(), from_list.end(), c));
        tile_cells[idx(best_tx, best_ty)].push_back(c);
        ++stats.moves;
      } else {
        const double ox = pl.x(best_swap), oy = pl.y(best_swap);
        pl.set(best_swap, old_x, old_y);
        pl.set(c, ox, oy);
        auto& to_list = tile_cells[idx(best_tx, best_ty)];
        from_list.erase(std::find(from_list.begin(), from_list.end(), c));
        to_list.erase(std::find(to_list.begin(), to_list.end(), best_swap));
        from_list.push_back(best_swap);
        to_list.push_back(c);
        ++stats.swaps;
      }
    }
    if (!improved) break;
  }
  return stats;
}

}  // namespace dsp
