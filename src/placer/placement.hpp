// Placement state shared by the host placer, the DSPlacer core, timing
// analysis and routing: a continuous (x, y) per cell plus the discrete DSP
// site assignment for DSP cells. Legality of the DSP part (one cell per
// site, cascade chains on adjacent rows of one column — paper constraints
// (4) and (5)) is checked by validate_dsp().
#pragma once

#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"

namespace dsp {

class Placement {
 public:
  Placement() = default;
  Placement(const Netlist& nl, const Device& dev);

  double x(CellId c) const { return x_[static_cast<size_t>(c)]; }
  double y(CellId c) const { return y_[static_cast<size_t>(c)]; }
  void set(CellId c, double x, double y) {
    x_[static_cast<size_t>(c)] = x;
    y_[static_cast<size_t>(c)] = y;
  }

  /// DSP site index for a DSP cell (-1 = unassigned). Setting the site also
  /// snaps the continuous coordinates to the site.
  int dsp_site(CellId c) const { return dsp_site_[static_cast<size_t>(c)]; }
  void assign_dsp_site(const Device& dev, CellId c, int site);
  void clear_dsp_site(CellId c) { dsp_site_[static_cast<size_t>(c)] = -1; }

  int num_cells() const { return static_cast<int>(x_.size()); }

  /// Checks DSP legality against netlist chains and device sites:
  /// every DSP assigned, no site shared, chains occupy consecutive rows of
  /// one column in order. Returns an error description or "" if legal.
  std::string validate_dsp(const Netlist& nl, const Device& dev) const;

  /// Euclidean distance between two placed cells.
  double distance(CellId a, CellId b) const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<int> dsp_site_;
};

}  // namespace dsp
