#include "placer/spreader.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace dsp {
namespace {

// Resource class for capacity accounting: LUT-shaped cells compete for the
// 8 LUT slots of a tile, FFs for the 16 FF slots. Spreading them against a
// combined budget lets LUT-dense bins overflow even when total slots look
// fine, which the legalizer then resolves with huge displacements — so the
// two classes are spread independently.
enum class SpreadClass { kLutLike, kFfLike, kNone };

SpreadClass spread_class(const Cell& c, const SpreaderOptions& opts) {
  if (c.fixed) return SpreadClass::kNone;
  switch (c.type) {
    case CellType::kLut:
    case CellType::kLutRam:
    case CellType::kCarry:
      return SpreadClass::kLutLike;
    case CellType::kFlipFlop:
      return SpreadClass::kFfLike;
    case CellType::kDsp:
    case CellType::kBram:
      return opts.move_dsps ? SpreadClass::kLutLike : SpreadClass::kNone;
    default:
      return SpreadClass::kNone;
  }
}

}  // namespace

// Capacity-proportional recursive bisection. Cells are split along the
// region's longer axis by their current coordinate, with the split sized to
// the two halves' logic capacity; leaves distribute their cells uniformly.
// The mapping is monotone per axis, so the relative order produced by the
// quadratic solve is preserved — which is exactly what diffusion-style
// spreading destroys and what keeps chains/arrays local after spreading.
void spread_cells_of_class(const Netlist& nl, const Device& dev, Placement& pl,
                           const SpreaderOptions& opts, SpreadClass cls,
                           double slots_per_tile) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < nl.num_cells(); ++c)
    if (spread_class(nl.cell(c), opts) == cls) cells.push_back(c);
  if (cells.empty()) return;

  // Per-tile-column capacity in "cell slots". Non-logic columns get a small
  // epsilon so DSP/BRAM cells traversing them are not globally forbidden;
  // the legalizers snap them to real sites afterwards.
  //
  // If the design genuinely needs more than target_util of this resource
  // class (e.g. 81% LUT utilization on SkrSkr-3), raise the effective
  // target so the bisection remains feasible instead of piling overflow
  // into the last-processed region.
  long long logic_tiles = 0;
  for (int x = 0; x < dev.width(); ++x)
    if (dev.is_logic_column(x)) logic_tiles += dev.height();
  const double needed_util =
      static_cast<double>(cells.size()) /
      std::max(1.0, static_cast<double>(logic_tiles) * slots_per_tile);
  const double effective_util =
      std::clamp(std::max(opts.target_util, needed_util * 1.06), 0.05, 0.99);
  const double tile_slots = slots_per_tile * effective_util;
  auto column_capacity = [&](int x) {
    if (dev.is_logic_column(x)) return tile_slots;
    return dev.column_type(x) == ColumnType::kPs ? 0.0 : tile_slots * 0.15;
  };

  struct Region {
    int x0, x1, y0, y1;  // tile bounds, half-open [x0,x1) x [y0,y1)
  };

  std::function<double(const Region&)> region_capacity = [&](const Region& r) {
    double cap = 0.0;
    for (int x = r.x0; x < r.x1; ++x) cap += column_capacity(x) * (r.y1 - r.y0);
    return cap;
  };

  // Recursive splitting on index ranges of `cells`.
  std::function<void(Region, size_t, size_t)> split = [&](Region r, size_t lo, size_t hi) {
    const size_t n = hi - lo;
    if (n == 0) return;
    const int w = r.x1 - r.x0;
    const int h = r.y1 - r.y0;
    if ((w <= 1 && h <= 1) || n <= 2) {
      // Leaf: uniform fill, ordered by y for determinism.
      std::sort(cells.begin() + static_cast<long>(lo), cells.begin() + static_cast<long>(hi),
                [&](CellId a, CellId b) { return pl.y(a) < pl.y(b); });
      for (size_t i = lo; i < hi; ++i) {
        const double f = (static_cast<double>(i - lo) + 0.5) / static_cast<double>(n);
        const double x = r.x0 + 0.5 * w;
        const double y = r.y0 + f * h;
        pl.set(cells[i], dev.clamp_x(x), dev.clamp_y(y));
      }
      return;
    }

    const bool split_x = w >= h;
    // Capacities of the two halves.
    Region a = r, b = r;
    if (split_x) {
      const int mid = r.x0 + w / 2;
      a.x1 = mid;
      b.x0 = mid;
    } else {
      const int mid = r.y0 + h / 2;
      a.y1 = mid;
      b.y0 = mid;
    }
    const double cap_a = region_capacity(a);
    const double cap_b = region_capacity(b);
    if (cap_a + cap_b <= 0) return;

    std::sort(cells.begin() + static_cast<long>(lo), cells.begin() + static_cast<long>(hi),
              [&](CellId u, CellId v) {
                return split_x ? pl.x(u) < pl.x(v) : pl.y(u) < pl.y(v);
              });
    double ideal = static_cast<double>(n) * cap_a / (cap_a + cap_b);
    // Respect hard capacity on both sides where possible.
    ideal = std::min(ideal, cap_a);
    ideal = std::max(ideal, static_cast<double>(n) - cap_b);
    size_t take = static_cast<size_t>(std::llround(std::clamp(ideal, 0.0, static_cast<double>(n))));
    split(a, lo, lo + take);
    split(b, lo + take, hi);
  };

  Region whole{0, dev.width(), 0, dev.height()};
  split(whole, 0, cells.size());
}

void spread_cells(const Netlist& nl, const Device& dev, Placement& pl,
                  const SpreaderOptions& opts) {
  spread_cells_of_class(nl, dev, pl, opts, SpreadClass::kLutLike,
                        dev.clb_capacity().luts_per_tile);
  spread_cells_of_class(nl, dev, pl, opts, SpreadClass::kFfLike,
                        dev.clb_capacity().ffs_per_tile);
}

}  // namespace dsp
