// Discrete legalization of non-DSP resources.
//
// LUT/FF/CARRY cells snap to logic-tile slots (SLICEM-only for LUTRAM),
// BRAM cells to BRAM column sites. Greedy nearest-feasible with ring search
// — the Tetris-style legalizer every analytical FPGA flow ends with.
#pragma once

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"

namespace dsp {

struct LegalizeStats {
  double total_displacement = 0.0;
  double max_displacement = 0.0;
  int cells_moved = 0;
};

/// Legalizes LUT/LUTRAM/FF/CARRY onto logic tiles honoring per-tile
/// capacities, and BRAMs onto BRAM sites. DSP cells are untouched (their
/// legalization is the DSPlacer core's job, or the baseline DSP placer's).
LegalizeStats legalize_logic(const Netlist& nl, const Device& dev, Placement& pl);

}  // namespace dsp
