#include "placer/placement_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/binio.hpp"

namespace dsp {

std::string write_placement(const Netlist& nl, const Placement& pl) {
  std::ostringstream os;
  os << "placement " << nl.name() << '\n';
  os.precision(9);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    os << nl.cell(c).name << ' ' << pl.x(c) << ' ' << pl.y(c);
    if (pl.dsp_site(c) >= 0) os << " site=" << pl.dsp_site(c);
    os << '\n';
  }
  return os.str();
}

Placement read_placement(const Netlist& nl, const Device& dev, const std::string& text) {
  Placement pl(nl, dev);
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;
    if (first == "placement") continue;  // header
    double x = 0, y = 0;
    if (!(ls >> x >> y))
      throw std::runtime_error("placement parse error line " + std::to_string(line_no) +
                               ": expected <name> <x> <y>");
    const auto cell = nl.find_cell(first);
    if (!cell)
      throw std::runtime_error("placement parse error line " + std::to_string(line_no) +
                               ": unknown cell '" + first + "'");
    pl.set(*cell, x, y);
    std::string attr;
    while (ls >> attr) {
      if (attr.rfind("site=", 0) == 0) {
        const int site = std::stoi(attr.substr(5));
        if (site < 0 || site >= dev.dsp_capacity())
          throw std::runtime_error("placement parse error line " + std::to_string(line_no) +
                                   ": site out of range");
        pl.assign_dsp_site(dev, *cell, site);
        pl.set(*cell, x, y);  // keep the serialized coordinates verbatim
      } else {
        throw std::runtime_error("placement parse error line " + std::to_string(line_no) +
                                 ": unknown attribute '" + attr + "'");
      }
    }
  }
  return pl;
}

bool save_placement(const Netlist& nl, const Placement& pl, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << write_placement(nl, pl);
  return static_cast<bool>(f);
}

Placement load_placement(const Netlist& nl, const Device& dev, const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open placement file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return read_placement(nl, dev, ss.str());
}

void write_placement_binary(const Placement& pl, ByteWriter& w) {
  w.i32(pl.num_cells());
  for (CellId c = 0; c < pl.num_cells(); ++c) {
    w.f64(pl.x(c));
    w.f64(pl.y(c));
    w.i32(pl.dsp_site(c));
  }
}

std::string read_placement_binary(ByteReader& r, const Netlist& nl, const Device& dev,
                                  Placement* pl) {
  const int32_t count = r.i32();
  if (r.fail()) return "truncated placement record";
  if (count != nl.num_cells())
    return "placement cell count " + std::to_string(count) + " != netlist " +
           std::to_string(nl.num_cells());
  if (!r.fits(static_cast<uint64_t>(count), 2 * sizeof(double) + sizeof(int32_t)))
    return "truncated placement record";
  *pl = Placement(nl, dev);
  for (CellId c = 0; c < count; ++c) {
    const double x = r.f64();
    const double y = r.f64();
    const int32_t site = r.i32();
    if (site < -1 || site >= dev.dsp_capacity())
      return "placement site " + std::to_string(site) + " out of range for cell " +
             std::to_string(c);
    if (site >= 0) pl->assign_dsp_site(dev, c, site);
    // Exact coordinates last: assign_dsp_site snaps to the site center, the
    // checkpointed values are authoritative.
    pl->set(c, x, y);
  }
  if (r.fail()) return "truncated placement record";
  return "";
}

}  // namespace dsp
