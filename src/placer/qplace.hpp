// Quadratic analytical global placement.
//
// Minimizes the clique/star quadratic wirelength model with fixed cells as
// anchors, solved per axis by Jacobi-preconditioned conjugate gradient on
// the (implicit, matrix-free) graph Laplacian. This is the "off-the-shelf
// analytical placer" substrate of the paper's flow (Fig. 2): it produces
// the prototype placement, and re-places non-DSP logic around frozen DSPs
// during DSPlacer's incremental alternation.
#pragma once

#include <vector>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"
#include "util/rng.hpp"

namespace dsp {

struct QPlaceOptions {
  int max_cg_iters = 300;
  double cg_tolerance = 1e-6;
  int clique_limit = 5;        // nets up to this many pins use a clique model
  double anchor_weight = 1.0;  // extra pull toward fixed cells
  bool freeze_dsps = false;    // treat currently-assigned DSP sites as fixed
  /// Pseudo-anchor weight toward each movable cell's CURRENT position.
  /// Zero for the first wirelength solve; later global iterations raise it
  /// so the solution keeps the density achieved by spreading (the standard
  /// anchored-quadratic-placement loop).
  double pseudo_anchor_weight = 0.0;
  /// Optional per-net weight multipliers (index = NetId), used by the
  /// timing-driven loop to pull critical nets tighter. Null = all 1.
  const std::vector<double>* net_weight_scale = nullptr;
};

/// Solves the quadratic program and writes positions for movable cells into
/// `pl` (fixed cells and, if freeze_dsps, site-assigned DSPs are untouched).
/// Cells not connected to any anchor stay at their current coordinates.
void quadratic_place(const Netlist& nl, const Device& dev, Placement& pl,
                     const QPlaceOptions& opts = {});

}  // namespace dsp
