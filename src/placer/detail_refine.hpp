// Detailed placement refinement: greedy wirelength-driven moves and swaps
// of logic cells within a bounded window after legalization. Keeps every
// placement legal by construction (moves go to free compatible slots,
// swaps exchange same-resource cells) and never increases total HPWL.
// Optional last mile of the host placer; exercised by the ablation bench.
#pragma once

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "placer/placement.hpp"

namespace dsp {

struct RefineOptions {
  int passes = 2;         // sweeps over all movable logic cells
  int window = 3;         // Chebyshev radius of candidate slots (tiles)
  double min_gain = 1e-9; // accept a move only above this HPWL gain
};

struct RefineStats {
  int moves = 0;
  int swaps = 0;
  double hpwl_gain = 0.0;  // total HPWL reduction (>= 0)
};

/// Refines LUT/LUTRAM/FF/CARRY positions in `pl` (must already be legal
/// w.r.t. tile capacities; DSP/BRAM/fixed cells are untouched).
RefineStats refine_detail(const Netlist& nl, const Device& dev, Placement& pl,
                          const RefineOptions& opts = {});

}  // namespace dsp
