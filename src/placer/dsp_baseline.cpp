#include "placer/dsp_baseline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace dsp {
namespace {

// Unified view: every DSP belongs to a "group" that must occupy consecutive
// rows of one column — real chains, or singletons of length 1.
struct Group {
  std::vector<CellId> cells;
  double cx = 0, cy = 0;  // centroid of current continuous positions
};

std::vector<Group> collect_groups(const Netlist& nl, const Placement& pl,
                                  bool skip_assigned) {
  std::vector<Group> groups;
  std::vector<char> in_chain(static_cast<size_t>(nl.num_cells()), 0);
  for (int ci = 0; ci < nl.num_chains(); ++ci) {
    Group g;
    g.cells = nl.chain(ci).cells;
    for (CellId c : g.cells) in_chain[static_cast<size_t>(c)] = 1;
    if (skip_assigned) {
      bool any_assigned = false;
      for (CellId c : g.cells) any_assigned |= pl.dsp_site(c) >= 0;
      if (any_assigned) continue;  // chain pinned by DSPlacer
    }
    groups.push_back(std::move(g));
  }
  for (CellId c = 0; c < nl.num_cells(); ++c)
    if (nl.cell(c).type == CellType::kDsp && !in_chain[static_cast<size_t>(c)] &&
        !(skip_assigned && pl.dsp_site(c) >= 0))
      groups.push_back(Group{{c}, 0, 0});
  for (Group& g : groups) {
    for (CellId c : g.cells) {
      g.cx += pl.x(c);
      g.cy += pl.y(c);
    }
    g.cx /= static_cast<double>(g.cells.size());
    g.cy /= static_cast<double>(g.cells.size());
  }
  return groups;
}

// Occupancy per column; finds the free run of `len` consecutive rows whose
// placement cost (distance of the run's span midpoint to the target) is
// minimal.
class SiteOccupancy {
 public:
  explicit SiteOccupancy(const Device& dev) : dev_(dev) {
    for (const auto& col : dev.dsp_columns())
      used_.emplace_back(static_cast<size_t>(col.num_sites), 0);
  }

  void occupy_site(int site) {
    const DspSite& s = dev_.dsp_site(site);
    used_[static_cast<size_t>(s.column)][static_cast<size_t>(s.row)] = 1;
  }

  /// Best (column, start_row) for a group of `len` near (tx, ty); {-1,-1}
  /// if nothing fits.
  std::pair<int, int> best_fit(int len, double tx, double ty) const {
    int best_col = -1, best_row = -1;
    double best_cost = 1e18;
    for (size_t ci = 0; ci < used_.size(); ++ci) {
      const auto& col = dev_.dsp_columns()[ci];
      int run = 0;
      for (int r = 0; r < col.num_sites; ++r) {
        run = used_[ci][static_cast<size_t>(r)] ? 0 : run + 1;
        if (run >= len) {
          const int start = r - len + 1;
          const double mid_y = col.y0 + start + (len - 1) / 2.0;
          const double cost = std::fabs(col.x - tx) * 1.5 + std::fabs(mid_y - ty);
          if (cost < best_cost) {
            best_cost = cost;
            best_col = static_cast<int>(ci);
            best_row = start;
          }
        }
      }
    }
    return {best_col, best_row};
  }

  /// Lowest free run of `len` rows in a specific column, or -1.
  int lowest_fit(int column, int len) const {
    const auto& col = dev_.dsp_columns()[static_cast<size_t>(column)];
    int run = 0;
    for (int r = 0; r < col.num_sites; ++r) {
      run = used_[static_cast<size_t>(column)][static_cast<size_t>(r)] ? 0 : run + 1;
      if (run >= len) return r - len + 1;
    }
    return -1;
  }

  void occupy(int column, int start, int len) {
    for (int r = start; r < start + len; ++r)
      used_[static_cast<size_t>(column)][static_cast<size_t>(r)] = 1;
  }

 private:
  const Device& dev_;
  std::vector<std::vector<char>> used_;
};

void commit(const Netlist& nl, const Device& dev, Placement& pl, const Group& g,
            int column, int start) {
  for (size_t k = 0; k < g.cells.size(); ++k)
    pl.assign_dsp_site(dev, g.cells[k], dev.dsp_site_index(column, start + static_cast<int>(k)));
  (void)nl;
}

}  // namespace

bool legalize_dsps_baseline(const Netlist& nl, const Device& dev, Placement& pl,
                            const DspBaselineOptions& opts) {
  std::vector<Group> groups = collect_groups(nl, pl, opts.only_unassigned);
  SiteOccupancy occ(dev);
  if (opts.only_unassigned) {
    for (CellId c = 0; c < nl.num_cells(); ++c)
      if (nl.cell(c).type == CellType::kDsp && pl.dsp_site(c) >= 0)
        occ.occupy_site(pl.dsp_site(c));
  }

  if (opts.mode == DspBaselineMode::kVivadoLike) {
    // Longest groups first (hardest to fit), then by centroid for
    // determinism. Each goes to the nearest feasible segment.
    std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
      if (a.cells.size() != b.cells.size()) return a.cells.size() > b.cells.size();
      if (a.cy != b.cy) return a.cy < b.cy;
      return a.cx < b.cx;
    });
    for (const Group& g : groups) {
      const auto [col, row] = occ.best_fit(static_cast<int>(g.cells.size()), g.cx, g.cy);
      if (col < 0) return false;
      occ.occupy(col, row, static_cast<int>(g.cells.size()));
      commit(nl, dev, pl, g, col, row);
    }
    return true;
  }

  // kAmfLike: compute the DSP centroid, order columns by distance to it,
  // shuffle the groups (dataflow-oblivious), then stuff columns in order —
  // maximal compaction, scrambled datapath.
  double cx = 0, cy = 0;
  int total = 0;
  for (const Group& g : groups) {
    cx += g.cx * static_cast<double>(g.cells.size());
    cy += g.cy * static_cast<double>(g.cells.size());
    total += static_cast<int>(g.cells.size());
  }
  if (total == 0) return true;
  cx /= total;
  cy /= total;

  std::vector<int> col_order(dev.dsp_columns().size());
  std::iota(col_order.begin(), col_order.end(), 0);
  std::sort(col_order.begin(), col_order.end(), [&](int a, int b) {
    return std::fabs(dev.dsp_columns()[static_cast<size_t>(a)].x - cx) <
           std::fabs(dev.dsp_columns()[static_cast<size_t>(b)].x - cx);
  });

  Rng rng(opts.seed);
  rng.shuffle(groups);
  // Longest-first within the shuffle so long chains do not strand free rows.
  std::stable_sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    return a.cells.size() > b.cells.size();
  });

  for (const Group& g : groups) {
    bool placed = false;
    for (int col : col_order) {
      const int row = occ.lowest_fit(col, static_cast<int>(g.cells.size()));
      if (row >= 0) {
        occ.occupy(col, row, static_cast<int>(g.cells.size()));
        commit(nl, dev, pl, g, col, row);
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

}  // namespace dsp
