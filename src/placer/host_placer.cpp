#include "placer/host_placer.hpp"

#include <algorithm>
#include <optional>

#include "timing/sta.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dsp {

HostPlacerOptions HostPlacerOptions::vivado_like() {
  HostPlacerOptions o;
  o.mode = HostMode::kVivadoLike;
  o.global_iterations = 3;
  o.spread.target_util = 0.75;
  return o;
}

HostPlacerOptions HostPlacerOptions::amf_like() {
  HostPlacerOptions o;
  o.mode = HostMode::kAmfLike;
  // AMF-Placer adapted to ZCU104 converges with fewer refinement rounds,
  // packs harder, and leaves its solves under-converged (the paper reports
  // limited adaptability: compact but congested, poor PS-PL datapath).
  o.global_iterations = 1;
  o.spread.target_util = 0.95;
  o.qplace.max_cg_iters = 120;
  return o;
}

HostPlacer::HostPlacer(const Netlist& nl, const Device& dev, HostPlacerOptions opts)
    : nl_(nl), dev_(dev), opts_(opts) {}

void HostPlacer::global_and_legalize(Placement& pl, bool freeze_dsps) {
  QPlaceOptions qopts = opts_.qplace;
  qopts.freeze_dsps = freeze_dsps;
  if (!net_weight_scale_.empty()) qopts.net_weight_scale = &net_weight_scale_;
  SpreaderOptions sopts = opts_.spread;
  sopts.move_dsps = !freeze_dsps;
  {
    std::optional<ScopedStage> scope;
    if (trace_ != nullptr) scope.emplace(*trace_, "qplace+spread");
    for (int it = 0; it < opts_.global_iterations; ++it) {
      // Anchored loop: the first solve is pure wirelength; later solves pull
      // toward the spread result with growing strength so density sticks.
      qopts.pseudo_anchor_weight = it == 0 ? 0.0 : 0.05 * static_cast<double>(it);
      quadratic_place(nl_, dev_, pl, qopts);
      spread_cells(nl_, dev_, pl, sopts);
    }
    // Final anchored solve recovers wirelength, then one more spread so the
    // legalizer starts from a density-feasible state (ring displacement stays
    // local).
    qopts.pseudo_anchor_weight = 0.12;
    quadratic_place(nl_, dev_, pl, qopts);
    spread_cells(nl_, dev_, pl, sopts);
  }
  std::optional<ScopedStage> scope;
  if (trace_ != nullptr) scope.emplace(*trace_, "legalize logic");
  legalize_logic(nl_, dev_, pl);
  if (opts_.detail_refine) refine_detail(nl_, dev_, pl, opts_.refine);
}

Placement HostPlacer::place_full() {
  Placement pl(nl_, dev_);
  // Jitter movable cells around the fabric center so the first quadratic
  // solve is well-conditioned (identical coordinates make the Laplacian
  // solve degenerate toward anchors only).
  Rng rng(opts_.seed);
  for (CellId c = 0; c < nl_.num_cells(); ++c) {
    if (nl_.cell(c).fixed) continue;
    pl.set(c, dev_.clamp_x(pl.x(c) + rng.uniform(-3.0, 3.0)),
           dev_.clamp_y(pl.y(c) + rng.uniform(-3.0, 3.0)));
  }

  global_and_legalize(pl, /*freeze_dsps=*/false);

  {
    std::optional<ScopedStage> scope;
    if (trace_ != nullptr) scope.emplace(*trace_, "dsp baseline");
    DspBaselineOptions dsp_opts;
    dsp_opts.mode = opts_.mode == HostMode::kVivadoLike ? DspBaselineMode::kVivadoLike
                                                        : DspBaselineMode::kAmfLike;
    dsp_opts.seed = opts_.seed;
    if (!legalize_dsps_baseline(nl_, dev_, pl, dsp_opts))
      LOG_ERROR("host", "baseline DSP legalization failed (device too small?)");
  }

  for (int t = 0; t < opts_.timing_driven_iterations; ++t) {
    std::optional<ScopedStage> scope;
    if (trace_ != nullptr) scope.emplace(*trace_, "timing round");
    timing_driven_round(pl);
  }
  return pl;
}

void HostPlacer::timing_driven_round(Placement& pl) {
  // Criticality extraction: any net with a pin on a failing endpoint's
  // worst path (approximated by endpoint slack sign) gets boosted.
  StaOptions sta;
  const TimingReport rep = run_sta_mhz(nl_, pl, dev_, opts_.timing_target_mhz, sta);
  if (rep.wns_ns >= 0 || rep.critical_path.empty()) return;  // nothing to chase
  if (net_weight_scale_.empty())
    net_weight_scale_.assign(static_cast<size_t>(nl_.num_nets()), 1.0);

  // Boost every net incident to a critical-path cell (the classic
  // path-based reweighting), with a cap so weights cannot run away.
  for (CellId c : rep.critical_path) {
    auto boost = [&](NetId n) {
      double& w = net_weight_scale_[static_cast<size_t>(n)];
      w = std::min(w * opts_.critical_net_boost, 16.0);
    };
    for (NetId n : nl_.nets_driven_by(c)) boost(n);
    for (NetId n : nl_.nets_sinking(c)) boost(n);
  }

  // Re-place everything with the boosted weights, then restore DSP
  // legality in the configured mode.
  global_and_legalize(pl, /*freeze_dsps=*/false);
  DspBaselineOptions dsp_opts;
  dsp_opts.mode = opts_.mode == HostMode::kVivadoLike ? DspBaselineMode::kVivadoLike
                                                      : DspBaselineMode::kAmfLike;
  dsp_opts.seed = opts_.seed;
  legalize_dsps_baseline(nl_, dev_, pl, dsp_opts);
  LOG_DEBUG("host", "timing-driven round: WNS was %.3f", rep.wns_ns);
}

void HostPlacer::replace_others(Placement& pl) {
  global_and_legalize(pl, /*freeze_dsps=*/true);
}

}  // namespace dsp
