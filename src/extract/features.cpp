#include "extract/features.hpp"

#include <algorithm>
#include <cmath>

#include "graph/centrality.hpp"
#include "graph/cycles.hpp"
#include "graph/traversal.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsp {
namespace {

// Fixed chunk length for the per-source DSP-distance loop; chunk-ordered
// reduction keeps feature (g) bit-identical for any thread count.
constexpr int64_t kSourceGrain = 16;

}  // namespace

Matrix extract_node_features(const Netlist& nl, const Digraph& g,
                             const FeatureOptions& opts, ThreadPool* pool_arg) {
  return extract_node_features(nl, CsrGraph::freeze(g), opts, pool_arg);
}

Matrix extract_node_features(const Netlist& nl, const CsrGraph& g,
                             const FeatureOptions& opts, ThreadPool* pool_arg,
                             const std::function<bool()>& cancel) {
  ThreadPool& pool = pool_arg != nullptr ? *pool_arg : global_pool();
  const int n = g.num_nodes();
  Matrix f(n, kNumNodeFeatures);
  Rng rng(opts.seed);
  const bool exact = n <= opts.exact_threshold;

  const std::vector<double> closeness =
      exact ? closeness_exact(g, &pool, cancel)
            : closeness_sampled(g, opts.centrality_pivots, rng, &pool, cancel);
  const std::vector<int> feedback = feedback_scores(g);
  const std::vector<int> ecc =
      exact ? eccentricity_exact(g, &pool, cancel)
            : eccentricity_sampled(g, opts.centrality_pivots, rng, &pool, cancel);
  const std::vector<double> betweenness =
      exact ? betweenness_exact(g, &pool, cancel)
            : betweenness_sampled(g, opts.centrality_pivots, rng, &pool, cancel);

  // Feature (g): mean shortest distance to other DSPs, DSP nodes only.
  std::vector<CellId> dsps = nl.cells_of_type(CellType::kDsp);
  std::vector<double> dsp_dist_sum(static_cast<size_t>(n), 0.0);
  std::vector<int> dsp_dist_cnt(static_cast<size_t>(n), 0);
  std::vector<CellId> sources = dsps;
  if (static_cast<int>(sources.size()) > opts.dsp_distance_sources) {
    rng.shuffle(sources);
    sources.resize(static_cast<size_t>(opts.dsp_distance_sources));
  }
  {
    const int64_t num_sources = static_cast<int64_t>(sources.size());
    const int64_t chunks = (num_sources + kSourceGrain - 1) / kSourceGrain;
    struct Partial {
      std::vector<double> sum;
      std::vector<int> cnt;
    };
    std::vector<Partial> partial(static_cast<size_t>(chunks));
    pool.parallel_for(num_sources, kSourceGrain,
                      [&](int64_t chunk, int64_t begin, int64_t end) {
                        if (cancel && cancel()) return;
                        auto ws = g.workspaces().acquire();
                        Partial& p = partial[static_cast<size_t>(chunk)];
                        p.sum.assign(static_cast<size_t>(n), 0.0);
                        p.cnt.assign(static_cast<size_t>(n), 0);
                        for (int64_t k = begin; k < end; ++k) {
                          const CellId s = sources[static_cast<size_t>(k)];
                          bfs_distances_undirected(g, s, *ws);
                          for (CellId d : dsps) {
                            if (d == s || ws->dist[static_cast<size_t>(d)] == kUnreached)
                              continue;
                            p.sum[static_cast<size_t>(d)] += ws->dist[static_cast<size_t>(d)];
                            ++p.cnt[static_cast<size_t>(d)];
                          }
                        }
                      });
    for (const Partial& p : partial) {
      if (p.sum.empty()) continue;  // chunk skipped by cancellation
      for (size_t v = 0; v < static_cast<size_t>(n); ++v) {
        dsp_dist_sum[v] += p.sum[v];
        dsp_dist_cnt[v] += p.cnt[v];
      }
    }
  }

  // Per-node assembly: rows are independent, so no reduction concerns.
  pool.parallel_for_each(n, [&](int64_t vi) {
    const int v = static_cast<int>(vi);
    f.at(v, 0) = closeness[static_cast<size_t>(v)];
    f.at(v, 1) = static_cast<double>(feedback[static_cast<size_t>(v)]);
    f.at(v, 2) = static_cast<double>(ecc[static_cast<size_t>(v)]);
    f.at(v, 3) = static_cast<double>(g.in_degree(v));
    f.at(v, 4) = static_cast<double>(g.out_degree(v));
    f.at(v, 5) = betweenness[static_cast<size_t>(v)];
    f.at(v, 6) = dsp_dist_cnt[static_cast<size_t>(v)] > 0
                     ? dsp_dist_sum[static_cast<size_t>(v)] / dsp_dist_cnt[static_cast<size_t>(v)]
                     : 0.0;
  });

  // Per-design z-score normalization keeps scales comparable across the
  // leave-one-out designs (different sizes => wildly different raw ranges).
  for (int j = 0; j < kNumNodeFeatures; ++j) {
    double mean = 0.0;
    for (int v = 0; v < n; ++v) mean += f.at(v, j);
    mean /= std::max(1, n);
    double var = 0.0;
    for (int v = 0; v < n; ++v) {
      const double d = f.at(v, j) - mean;
      var += d * d;
    }
    const double stddev = std::sqrt(var / std::max(1, n)) + 1e-9;
    for (int v = 0; v < n; ++v) f.at(v, j) = (f.at(v, j) - mean) / stddev;
  }
  return f;
}

int num_local_features() { return 6; }

Matrix extract_local_features(const Netlist& nl, const Digraph& g) {
  return extract_local_features(nl, CsrGraph::freeze(g));
}

Matrix extract_local_features(const Netlist& nl, const CsrGraph& g) {
  (void)nl;
  const int n = g.num_nodes();
  Matrix f(n, num_local_features());
  // PADE's classifier consumes automorphism/regularity signatures of the
  // local structure — NOT cell types or global connectivity. We model that
  // with purely structural local statistics: degrees, the multiplicity of
  // the node's (in,out)-degree pair across the design (nodes that repeat a
  // structural pattern — PE array images — share the pair), and one- and
  // two-hop neighborhood sizes.
  std::vector<std::pair<int, int>> deg(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) deg[static_cast<size_t>(v)] = {g.in_degree(v), g.out_degree(v)};
  auto sorted = deg;
  std::sort(sorted.begin(), sorted.end());

  for (int v = 0; v < n; ++v) {
    const auto range = std::equal_range(sorted.begin(), sorted.end(), deg[static_cast<size_t>(v)]);
    const double multiplicity = static_cast<double>(range.second - range.first);
    f.at(v, 0) = static_cast<double>(g.in_degree(v));
    f.at(v, 1) = static_cast<double>(g.out_degree(v));
    f.at(v, 2) = multiplicity;
    // Two-hop fanout size (local only).
    double two_hop = 0.0;
    for (int u : g.out(v)) two_hop += static_cast<double>(g.out_degree(u));
    f.at(v, 3) = two_hop;
    const auto nbrs = g.undirected(v);
    f.at(v, 4) = static_cast<double>(nbrs.size());
    double nbr_deg = 0.0;
    for (int u : nbrs) nbr_deg += static_cast<double>(g.in_degree(u) + g.out_degree(u));
    f.at(v, 5) = nbrs.empty() ? 0.0 : nbr_deg / static_cast<double>(nbrs.size());
  }
  return f;
}

}  // namespace dsp
