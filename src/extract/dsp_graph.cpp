#include "extract/dsp_graph.hpp"

#include <algorithm>
#include <string>

#include "graph/traversal.hpp"
#include "util/binio.hpp"
#include "util/thread_pool.hpp"

namespace dsp {

int DspGraph::local_index(CellId c) const {
  const auto it = std::find(dsps.begin(), dsps.end(), c);
  return it == dsps.end() ? -1 : static_cast<int>(it - dsps.begin());
}

std::vector<double> DspGraph::mean_dsp_distance() const {
  std::vector<double> sum(static_cast<size_t>(num_nodes()), 0.0);
  std::vector<int> cnt(static_cast<size_t>(num_nodes()), 0);
  for (const auto& e : edges) {
    sum[static_cast<size_t>(e.from)] += e.distance;
    ++cnt[static_cast<size_t>(e.from)];
    sum[static_cast<size_t>(e.to)] += e.distance;
    ++cnt[static_cast<size_t>(e.to)];
  }
  std::vector<double> mean(static_cast<size_t>(num_nodes()), 0.0);
  for (int i = 0; i < num_nodes(); ++i)
    if (cnt[static_cast<size_t>(i)] > 0)
      mean[static_cast<size_t>(i)] = sum[static_cast<size_t>(i)] / cnt[static_cast<size_t>(i)];
  return mean;
}

DspGraph build_dsp_graph(const Netlist& nl, const Digraph& g, const DspGraphOptions& opts,
                         ThreadPool* pool_arg) {
  return build_dsp_graph(nl, CsrGraph::freeze(g), opts, pool_arg);
}

DspGraph build_dsp_graph(const Netlist& nl, const CsrGraph& g, const DspGraphOptions& opts,
                         ThreadPool* pool_arg, const std::function<bool()>& cancel) {
  ThreadPool& pool = pool_arg != nullptr ? *pool_arg : global_pool();
  DspGraph out;
  out.dsps = nl.cells_of_type(CellType::kDsp);
  std::vector<int> local(static_cast<size_t>(nl.num_cells()), -1);
  for (size_t i = 0; i < out.dsps.size(); ++i)
    local[static_cast<size_t>(out.dsps[i])] = static_cast<int>(i);

  auto is_dsp = [&](int v) { return local[static_cast<size_t>(v)] >= 0; };

  // Per-source IDDFS walks are independent; each source collects its own
  // edge list and the lists concatenate in source order, so the edge array
  // (and hence adj) is identical for any thread count. Each chunk leases
  // one workspace and reuses it across its sources; `cancel` is polled at
  // chunk starts so service deadlines fire mid-stage, not only at stage
  // boundaries.
  const int64_t num_dsps = static_cast<int64_t>(out.dsps.size());
  std::vector<std::vector<DspGraphEdge>> per_src(static_cast<size_t>(num_dsps));
  std::vector<long long> visited(static_cast<size_t>(num_dsps), 0);
  pool.parallel_for(num_dsps, 0, [&](int64_t, int64_t begin, int64_t end) {
    if (cancel && cancel()) return;
    auto ws = g.workspaces().acquire();
    for (int64_t i = begin; i < end; ++i) {
      const CellId src = out.dsps[static_cast<size_t>(i)];
      // IDDFS with DSPs opaque: a path may END at a DSP but not pass through
      // one, so edges connect directly dataflow-adjacent DSPs.
      visited[static_cast<size_t>(i)] =
          iddfs_shortest_paths(g, src, opts.max_depth, is_dsp, is_dsp, *ws);
      for (size_t j = 0; j < out.dsps.size(); ++j) {
        const CellId dst = out.dsps[j];
        if (dst == src || ws->iddfs_distance[static_cast<size_t>(dst)] == kUnreached)
          continue;
        DspGraphEdge e;
        e.from = static_cast<int>(i);
        e.to = static_cast<int>(j);
        e.distance = ws->iddfs_distance[static_cast<size_t>(dst)];
        for (int v : ws->iddfs_path[static_cast<size_t>(dst)]) {
          if (v == src || v == dst) continue;
          switch (nl.cell(v).type) {
            case CellType::kLut:
            case CellType::kCarry:
              ++e.luts_on_path;
              break;
            case CellType::kFlipFlop:
              ++e.ffs_on_path;
              break;
            case CellType::kBram:
            case CellType::kLutRam:
              ++e.rams_on_path;
              break;
            default:
              break;
          }
        }
        per_src[static_cast<size_t>(i)].push_back(e);
      }
    }
  });
  for (size_t i = 0; i < per_src.size(); ++i) {
    out.nodes_visited += visited[i];
    out.edges.insert(out.edges.end(), per_src[i].begin(), per_src[i].end());
  }

  out.adj.assign(out.dsps.size(), {});
  for (size_t k = 0; k < out.edges.size(); ++k)
    out.adj[static_cast<size_t>(out.edges[k].from)].push_back(static_cast<int>(k));
  return out;
}

DspGraph prune_dsp_graph(const DspGraph& graph, const std::vector<char>& keep) {
  DspGraph out;
  out.nodes_visited = graph.nodes_visited;
  std::vector<int> remap(static_cast<size_t>(graph.num_nodes()), -1);
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const CellId c = graph.dsps[static_cast<size_t>(i)];
    if (keep[static_cast<size_t>(c)]) {
      remap[static_cast<size_t>(i)] = static_cast<int>(out.dsps.size());
      out.dsps.push_back(c);
    }
  }
  for (const auto& e : graph.edges) {
    const int nf = remap[static_cast<size_t>(e.from)];
    const int nt = remap[static_cast<size_t>(e.to)];
    if (nf >= 0 && nt >= 0) {
      DspGraphEdge ne = e;
      ne.from = nf;
      ne.to = nt;
      out.edges.push_back(ne);
    }
  }
  out.adj.assign(out.dsps.size(), {});
  for (size_t k = 0; k < out.edges.size(); ++k)
    out.adj[static_cast<size_t>(out.edges[k].from)].push_back(static_cast<int>(k));
  return out;
}

void write_dsp_graph_binary(const DspGraph& graph, ByteWriter& w) {
  w.i32(graph.num_nodes());
  for (CellId c : graph.dsps) w.i32(c);
  w.i32(graph.num_edges());
  for (const DspGraphEdge& e : graph.edges) {
    w.i32(e.from);
    w.i32(e.to);
    w.i32(e.distance);
    w.i32(e.luts_on_path);
    w.i32(e.ffs_on_path);
    w.i32(e.rams_on_path);
  }
  // Adjacency is derivable from the edge list but cheap to store, and
  // storing it preserves the builder's exact edge ordering per node.
  for (const auto& out_edges : graph.adj) {
    w.u64(out_edges.size());
    for (int k : out_edges) w.i32(k);
  }
  w.i64(graph.nodes_visited);
}

std::string read_dsp_graph_binary(ByteReader& r, const Netlist& nl, DspGraph* out) {
  *out = DspGraph{};
  const int32_t num_nodes = r.i32();
  if (r.fail() || num_nodes < 0 || !r.fits(static_cast<uint64_t>(num_nodes), 4))
    return "truncated DSP graph (nodes)";
  out->dsps.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    const int32_t c = r.i32();
    if (c < 0 || c >= nl.num_cells())
      return "DSP graph cell id " + std::to_string(c) + " out of range";
    out->dsps.push_back(c);
  }
  const int32_t num_edges = r.i32();
  if (r.fail() || num_edges < 0 || !r.fits(static_cast<uint64_t>(num_edges), 24))
    return "truncated DSP graph (edges)";
  out->edges.reserve(static_cast<size_t>(num_edges));
  for (int i = 0; i < num_edges; ++i) {
    DspGraphEdge e;
    e.from = r.i32();
    e.to = r.i32();
    e.distance = r.i32();
    e.luts_on_path = r.i32();
    e.ffs_on_path = r.i32();
    e.rams_on_path = r.i32();
    if (!r.fail() && (e.from < 0 || e.from >= num_nodes || e.to < 0 || e.to >= num_nodes))
      return "DSP graph edge endpoint out of range";
    out->edges.push_back(e);
  }
  out->adj.assign(static_cast<size_t>(num_nodes), {});
  for (int i = 0; i < num_nodes; ++i) {
    const uint64_t degree = r.u64();
    if (!r.fits(degree, 4)) return "truncated DSP graph (adjacency)";
    auto& out_edges = out->adj[static_cast<size_t>(i)];
    out_edges.reserve(static_cast<size_t>(degree));
    for (uint64_t k = 0; k < degree; ++k) {
      const int32_t idx = r.i32();
      if (!r.fail() && (idx < 0 || idx >= num_edges))
        return "DSP graph adjacency index out of range";
      out_edges.push_back(idx);
    }
  }
  out->nodes_visited = r.i64();
  if (r.fail()) return "truncated DSP graph";
  return "";
}

}  // namespace dsp
