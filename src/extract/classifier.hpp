// Datapath-DSP classification pipeline: glues feature extraction, the GCN,
// and the PADE-SVM baseline together, including the paper's leave-one-out
// evaluation protocol (train on four benchmarks, test on the fifth) behind
// Fig. 7(a)/(b).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "extract/features.hpp"
#include "netlist/netlist.hpp"
#include "nn/gcn.hpp"
#include "nn/svm.hpp"

namespace dsp {

/// Everything the classifiers need about one design.
struct DesignGraphData {
  std::string name;
  Digraph graph;
  Matrix gcn_features;     // global centrality features (kNumNodeFeatures)
  Matrix local_features;   // PADE-style local features
  std::vector<int> labels; // 1 = datapath, 0 = control (valid at DSP rows)
  std::vector<char> dsp_mask;  // true at DSP cells
};

/// `pool` = nullptr runs feature extraction on the global thread pool.
/// `frozen`, when non-null, must be CsrGraph::freeze of nl.to_digraph();
/// both feature extractors then run against it instead of freezing their
/// own copy (the flow freezes once per run and passes it here). `cancel`
/// (thread-safe, optional) is polled between kernel chunks; a cancelled
/// build returns meaningless partial features.
DesignGraphData build_design_data(const Netlist& nl, const FeatureOptions& opts = {},
                                  ThreadPool* pool = nullptr,
                                  const CsrGraph* frozen = nullptr,
                                  const std::function<bool()>& cancel = nullptr);

/// Induced subgraph on all nodes within `hops` (undirected) of a DSP node,
/// with features/labels/masks selected accordingly. With a 2-layer GCN the
/// receptive field of a DSP logit is its 2-hop neighborhood, so training on
/// this subgraph is equivalent up to boundary-degree normalization while
/// being several times smaller. `orig_index[i]` maps reduced row i back to
/// the input's row.
DesignGraphData restrict_to_dsp_neighborhood(const DesignGraphData& d, int hops,
                                             std::vector<int>* orig_index);

/// Block-diagonal union of several designs (graphs disjoint, features and
/// masks concatenated) so one GCN trains jointly on multiple netlists.
DesignGraphData merge_designs(const std::vector<const DesignGraphData*>& designs);

struct LeaveOneOutResult {
  std::string test_design;
  double gcn_accuracy = 0.0;
  double svm_accuracy = 0.0;
  std::vector<EpochMetrics> curve;  // GCN train/test accuracy per epoch
};

/// Paper protocol: for each design, train GCN + SVM on the other four and
/// test on it. `gcn_cfg.epochs` controls curve length.
std::vector<LeaveOneOutResult> leave_one_out(const std::vector<DesignGraphData>& designs,
                                             const GcnConfig& gcn_cfg = {},
                                             const SvmConfig& svm_cfg = {});

/// Trains a GCN on `train` designs and predicts datapath (true) / control
/// (false) per DSP cell of `target`. The production entry point used by the
/// DSPlacer flow when ground truth is withheld.
std::vector<char> predict_datapath_dsps(const std::vector<DesignGraphData>& train,
                                        const DesignGraphData& target,
                                        const GcnConfig& gcn_cfg = {});

/// Content hash of one design (graph, features, labels, masks).
uint64_t design_content_hash(const DesignGraphData& d);

/// Content key of the full transductive sub-problem predict_datapath_dsps
/// solves. Training is transductive — the target's edges and features are
/// part of the merged training graph — so trained weights can only be
/// shared between jobs whose (training set, target, config) all match.
uint64_t gcn_problem_key(const std::vector<DesignGraphData>& train,
                         const DesignGraphData& target, const GcnConfig& gcn_cfg);

/// A trained transductive datapath classifier plus everything needed to
/// run inference again: the reduced 2-hop sub-problem (adjacency,
/// features, row mapping) and the fitted weights. Training is
/// deterministic for a given gcn_problem_key, so a pooled model predicts
/// bit-identically to training from scratch.
struct TrainedDatapathGcn {
  CsrMatrix adj;                 // normalized adjacency of the reduced problem
  Matrix features;               // reduced node features
  std::vector<int> orig;         // reduced row -> merged-graph row
  std::vector<char> merged_dsp_mask;
  int target_begin = 0;          // first merged row of the target block
  int target_nodes = 0;
  std::unique_ptr<GcnClassifier> gcn;
  std::mutex forward_mu;         // forward() caches activations; serialize callers
};

/// The training half of predict_datapath_dsps (same construction, bit for
/// bit), reusable across jobs that share the problem key.
std::shared_ptr<TrainedDatapathGcn> train_datapath_gcn(
    const std::vector<DesignGraphData>& train, const DesignGraphData& target,
    const GcnConfig& gcn_cfg = {});

/// The inference half: eval-mode forward + per-DSP argmax of the target
/// block. Identical to what predict_datapath_dsps returns for the model's
/// sub-problem.
std::vector<char> predict_datapath(TrainedDatapathGcn& model);

/// One eval-mode forward over `copies` co-resident jobs sharing this model:
/// block-diagonal adjacency + row-stacked features through a single
/// GcnClassifier::forward. Per-copy outputs are bit-identical to `copies`
/// independent predict_datapath calls (spmm and the dense layers are
/// row-independent, and eval mode has no dropout).
std::vector<std::vector<char>> predict_datapath_batched(TrainedDatapathGcn& model,
                                                        int copies);

/// Small process-wide LRU of trained datapath GCNs keyed by
/// gcn_problem_key. get_or_train holds the pool lock through a miss's
/// training so concurrent jobs with the same key train once and share
/// (the hit/miss counters in docs/METRICS.md count both outcomes).
class GcnWeightsPool {
 public:
  explicit GcnWeightsPool(size_t capacity = 4) : capacity_(capacity) {}

  std::shared_ptr<TrainedDatapathGcn> get_or_train(
      const std::vector<DesignGraphData>& train, const DesignGraphData& target,
      const GcnConfig& gcn_cfg);

 private:
  std::mutex mu_;
  size_t capacity_;
  // Most-recently-used first; tiny, so a vector beats a map + list.
  std::vector<std::pair<uint64_t, std::shared_ptr<TrainedDatapathGcn>>> lru_;
};

/// The process-wide pool the flow's Extract stage resolves through.
GcnWeightsPool& global_gcn_weights();

}  // namespace dsp
