// Datapath-DSP classification pipeline: glues feature extraction, the GCN,
// and the PADE-SVM baseline together, including the paper's leave-one-out
// evaluation protocol (train on four benchmarks, test on the fifth) behind
// Fig. 7(a)/(b).
#pragma once

#include <string>
#include <vector>

#include "extract/features.hpp"
#include "netlist/netlist.hpp"
#include "nn/gcn.hpp"
#include "nn/svm.hpp"

namespace dsp {

/// Everything the classifiers need about one design.
struct DesignGraphData {
  std::string name;
  Digraph graph;
  Matrix gcn_features;     // global centrality features (kNumNodeFeatures)
  Matrix local_features;   // PADE-style local features
  std::vector<int> labels; // 1 = datapath, 0 = control (valid at DSP rows)
  std::vector<char> dsp_mask;  // true at DSP cells
};

/// `pool` = nullptr runs feature extraction on the global thread pool.
/// `frozen`, when non-null, must be CsrGraph::freeze of nl.to_digraph();
/// both feature extractors then run against it instead of freezing their
/// own copy (the flow freezes once per run and passes it here). `cancel`
/// (thread-safe, optional) is polled between kernel chunks; a cancelled
/// build returns meaningless partial features.
DesignGraphData build_design_data(const Netlist& nl, const FeatureOptions& opts = {},
                                  ThreadPool* pool = nullptr,
                                  const CsrGraph* frozen = nullptr,
                                  const std::function<bool()>& cancel = nullptr);

/// Induced subgraph on all nodes within `hops` (undirected) of a DSP node,
/// with features/labels/masks selected accordingly. With a 2-layer GCN the
/// receptive field of a DSP logit is its 2-hop neighborhood, so training on
/// this subgraph is equivalent up to boundary-degree normalization while
/// being several times smaller. `orig_index[i]` maps reduced row i back to
/// the input's row.
DesignGraphData restrict_to_dsp_neighborhood(const DesignGraphData& d, int hops,
                                             std::vector<int>* orig_index);

/// Block-diagonal union of several designs (graphs disjoint, features and
/// masks concatenated) so one GCN trains jointly on multiple netlists.
DesignGraphData merge_designs(const std::vector<const DesignGraphData*>& designs);

struct LeaveOneOutResult {
  std::string test_design;
  double gcn_accuracy = 0.0;
  double svm_accuracy = 0.0;
  std::vector<EpochMetrics> curve;  // GCN train/test accuracy per epoch
};

/// Paper protocol: for each design, train GCN + SVM on the other four and
/// test on it. `gcn_cfg.epochs` controls curve length.
std::vector<LeaveOneOutResult> leave_one_out(const std::vector<DesignGraphData>& designs,
                                             const GcnConfig& gcn_cfg = {},
                                             const SvmConfig& svm_cfg = {});

/// Trains a GCN on `train` designs and predicts datapath (true) / control
/// (false) per DSP cell of `target`. The production entry point used by the
/// DSPlacer flow when ground truth is withheld.
std::vector<char> predict_datapath_dsps(const std::vector<DesignGraphData>& train,
                                        const DesignGraphData& target,
                                        const GcnConfig& gcn_cfg = {});

}  // namespace dsp
