// Node feature extraction for datapath-DSP identification (paper Section
// III-A). Each netlist-graph node gets a 7-dimensional feature vector:
//   (a) closeness centrality        (b) feedback-loop score
//   (c) eccentricity                (d) indegree
//   (e) outdegree                   (f) betweenness centrality
//   (g) average shortest-path distance to other DSP nodes (DSP nodes only;
//       0 elsewhere)
// Exact algorithms run on small graphs; pivot-sampled estimators keep
// netlist-scale extraction tractable (the classifier consumes rankings,
// which sampling preserves).
#pragma once

#include <functional>

#include "graph/csr_graph.hpp"
#include "graph/digraph.hpp"
#include "netlist/netlist.hpp"
#include "nn/matrix.hpp"

namespace dsp {

class ThreadPool;

inline constexpr int kNumNodeFeatures = 7;

struct FeatureOptions {
  int exact_threshold = 1500;  // graphs up to this many nodes use exact algos
  int centrality_pivots = 128;
  int dsp_distance_sources = 256;  // BFS sources for feature (g)
  uint64_t seed = 99;
};

/// Computes the feature matrix (num_cells x kNumNodeFeatures) for `nl`
/// using its lowered graph `g` (pass nl.to_digraph()). The centrality and
/// DSP-distance loops run on `pool` (nullptr: the global pool) and are
/// bit-identical for any thread count.
///
/// The CsrGraph overload is the hot path: every kernel walks the frozen
/// flat adjacency with per-chunk leased workspaces, and `cancel`
/// (optional, must be thread-safe) is polled between source chunks. A
/// cancelled extraction returns a meaningless partial matrix; callers
/// must check their cancel source before using it. The Digraph overload
/// freezes internally and is bit-identical.
Matrix extract_node_features(const Netlist& nl, const Digraph& g,
                             const FeatureOptions& opts = {},
                             ThreadPool* pool = nullptr);
Matrix extract_node_features(const Netlist& nl, const CsrGraph& g,
                             const FeatureOptions& opts = {},
                             ThreadPool* pool = nullptr,
                             const std::function<bool()>& cancel = nullptr);

/// PADE-style *local* features for the SVM baseline: degree, neighbor
/// cell-type histogram, and a local-regularity (automorphism proxy) score.
/// Overloads are bit-identical; CsrGraph reads neighborhoods off the
/// frozen undirected adjacency without per-node allocation.
Matrix extract_local_features(const Netlist& nl, const Digraph& g);
Matrix extract_local_features(const Netlist& nl, const CsrGraph& g);

int num_local_features();

}  // namespace dsp
