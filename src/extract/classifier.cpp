#include "extract/classifier.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace dsp {

DesignGraphData build_design_data(const Netlist& nl, const FeatureOptions& opts,
                                  ThreadPool* pool, const CsrGraph* frozen,
                                  const std::function<bool()>& cancel) {
  DesignGraphData d;
  d.name = nl.name();
  d.graph = nl.to_digraph();
  // Freeze once and feed every extractor the same flat view; the flow
  // passes its per-run frozen graph so nothing re-freezes downstream.
  std::optional<CsrGraph> local;
  const CsrGraph& csr =
      frozen != nullptr ? *frozen : local.emplace(CsrGraph::freeze(d.graph));
  d.gcn_features = extract_node_features(nl, csr, opts, pool, cancel);
  d.local_features = extract_local_features(nl, csr);
  d.labels.assign(static_cast<size_t>(nl.num_cells()), 0);
  d.dsp_mask.assign(static_cast<size_t>(nl.num_cells()), 0);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    if (cell.type == CellType::kDsp) {
      d.dsp_mask[static_cast<size_t>(c)] = 1;
      d.labels[static_cast<size_t>(c)] = cell.role == DspRole::kDatapath ? 1 : 0;
    }
  }
  return d;
}

DesignGraphData merge_designs(const std::vector<const DesignGraphData*>& designs) {
  DesignGraphData out;
  out.name = "merged";
  int total_nodes = 0;
  for (const auto* d : designs) total_nodes += d->graph.num_nodes();
  out.graph = Digraph(total_nodes);
  out.gcn_features = Matrix(total_nodes, kNumNodeFeatures);
  out.local_features = Matrix(total_nodes, num_local_features());
  out.labels.assign(static_cast<size_t>(total_nodes), 0);
  out.dsp_mask.assign(static_cast<size_t>(total_nodes), 0);

  int offset = 0;
  for (const auto* d : designs) {
    const int n = d->graph.num_nodes();
    for (int u = 0; u < n; ++u)
      for (int v : d->graph.out(u)) out.graph.add_edge(offset + u, offset + v);
    for (int u = 0; u < n; ++u) {
      for (int j = 0; j < d->gcn_features.cols(); ++j)
        out.gcn_features.at(offset + u, j) = d->gcn_features.at(u, j);
      for (int j = 0; j < d->local_features.cols(); ++j)
        out.local_features.at(offset + u, j) = d->local_features.at(u, j);
      out.labels[static_cast<size_t>(offset + u)] = d->labels[static_cast<size_t>(u)];
      out.dsp_mask[static_cast<size_t>(offset + u)] = d->dsp_mask[static_cast<size_t>(u)];
    }
    offset += n;
  }
  return out;
}

DesignGraphData restrict_to_dsp_neighborhood(const DesignGraphData& d, int hops,
                                             std::vector<int>* orig_index) {
  const int n = d.graph.num_nodes();
  // Multi-source BFS from every DSP node, undirected, depth-limited. The
  // frozen undirected adjacency replaces per-node undirected_neighbors()
  // materialization (each frontier node used to allocate+sort its own
  // neighbor vector).
  const CsrGraph csr = CsrGraph::freeze(d.graph);
  std::vector<int> depth(static_cast<size_t>(n), -1);
  std::vector<int> frontier;
  for (int v = 0; v < n; ++v) {
    if (d.dsp_mask[static_cast<size_t>(v)]) {
      depth[static_cast<size_t>(v)] = 0;
      frontier.push_back(v);
    }
  }
  for (int h = 0; h < hops; ++h) {
    std::vector<int> next;
    for (int u : frontier) {
      for (int v : csr.undirected(u)) {
        if (depth[static_cast<size_t>(v)] < 0) {
          depth[static_cast<size_t>(v)] = h + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }

  std::vector<int> keep;
  std::vector<int> remap(static_cast<size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (depth[static_cast<size_t>(v)] >= 0) {
      remap[static_cast<size_t>(v)] = static_cast<int>(keep.size());
      keep.push_back(v);
    }
  }

  DesignGraphData out;
  out.name = d.name + "#dsp-hood";
  const int m = static_cast<int>(keep.size());
  out.graph = Digraph(m);
  for (int i = 0; i < m; ++i)
    for (int v : d.graph.out(keep[static_cast<size_t>(i)]))
      if (remap[static_cast<size_t>(v)] >= 0) out.graph.add_edge(i, remap[static_cast<size_t>(v)]);
  out.gcn_features = Matrix(m, d.gcn_features.cols());
  out.local_features = Matrix(m, d.local_features.cols());
  out.labels.assign(static_cast<size_t>(m), 0);
  out.dsp_mask.assign(static_cast<size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    const int v = keep[static_cast<size_t>(i)];
    for (int j = 0; j < d.gcn_features.cols(); ++j)
      out.gcn_features.at(i, j) = d.gcn_features.at(v, j);
    for (int j = 0; j < d.local_features.cols(); ++j)
      out.local_features.at(i, j) = d.local_features.at(v, j);
    out.labels[static_cast<size_t>(i)] = d.labels[static_cast<size_t>(v)];
    out.dsp_mask[static_cast<size_t>(i)] = d.dsp_mask[static_cast<size_t>(v)];
  }
  if (orig_index != nullptr) *orig_index = std::move(keep);
  return out;
}

std::vector<LeaveOneOutResult> leave_one_out(const std::vector<DesignGraphData>& designs,
                                             const GcnConfig& gcn_cfg,
                                             const SvmConfig& svm_cfg) {
  std::vector<LeaveOneOutResult> results;
  for (size_t test_idx = 0; test_idx < designs.size(); ++test_idx) {
    std::vector<const DesignGraphData*> all;
    for (size_t i = 0; i < designs.size(); ++i)
      if (i != test_idx) all.push_back(&designs[i]);
    all.push_back(&designs[test_idx]);  // test design appended LAST
    const DesignGraphData merged = merge_designs(all);

    // Masks: train rows = DSPs of the first |designs|-1 blocks; test rows =
    // DSPs of the final block. The GCN sees all edges (transductive, as in
    // the paper) but never trains on test labels.
    const int test_nodes = designs[test_idx].graph.num_nodes();
    const int total = merged.graph.num_nodes();
    const int test_begin = total - test_nodes;
    std::vector<char> train_mask(static_cast<size_t>(total), 0);
    std::vector<char> test_mask(static_cast<size_t>(total), 0);
    for (int v = 0; v < total; ++v) {
      if (!merged.dsp_mask[static_cast<size_t>(v)]) continue;
      (v < test_begin ? train_mask : test_mask)[static_cast<size_t>(v)] = 1;
    }

    LeaveOneOutResult r;
    r.test_design = designs[test_idx].name;

    // GCN on the exact 2-hop receptive field of the labeled (DSP) nodes.
    std::vector<int> orig;
    const DesignGraphData sub = restrict_to_dsp_neighborhood(merged, 2, &orig);
    std::vector<char> sub_train(orig.size(), 0), sub_test(orig.size(), 0);
    for (size_t i = 0; i < orig.size(); ++i) {
      sub_train[i] = train_mask[static_cast<size_t>(orig[i])];
      sub_test[i] = test_mask[static_cast<size_t>(orig[i])];
    }
    const CsrMatrix adj = CsrMatrix::normalized_adjacency(sub.graph);
    GcnClassifier gcn(kNumNodeFeatures, gcn_cfg);
    r.curve = gcn.fit(adj, sub.gcn_features, sub.labels, sub_train, sub_test);
    const Matrix logits = gcn.forward(adj, sub.gcn_features, /*training=*/false);
    r.gcn_accuracy = GcnClassifier::accuracy(logits, sub.labels, sub_test);

    LinearSvm svm(svm_cfg);
    svm.fit(merged.local_features, merged.labels, train_mask);
    r.svm_accuracy = svm.accuracy(merged.local_features, merged.labels, test_mask);

    LOG_INFO("classifier", "LOO %s: GCN %.3f SVM %.3f", r.test_design.c_str(),
             r.gcn_accuracy, r.svm_accuracy);
    results.push_back(std::move(r));
  }
  return results;
}

std::shared_ptr<TrainedDatapathGcn> train_datapath_gcn(
    const std::vector<DesignGraphData>& train, const DesignGraphData& target,
    const GcnConfig& gcn_cfg) {
  auto model = std::make_shared<TrainedDatapathGcn>();
  std::vector<const DesignGraphData*> all;
  for (const auto& d : train) all.push_back(&d);
  all.push_back(&target);  // target appended LAST, as in leave_one_out
  const DesignGraphData merged = merge_designs(all);

  const int total = merged.graph.num_nodes();
  model->target_nodes = target.graph.num_nodes();
  model->target_begin = total - model->target_nodes;

  const DesignGraphData sub = restrict_to_dsp_neighborhood(merged, 2, &model->orig);
  std::vector<char> sub_train(model->orig.size(), 0);
  for (size_t i = 0; i < model->orig.size(); ++i)
    sub_train[i] = model->orig[i] < model->target_begin &&
                   merged.dsp_mask[static_cast<size_t>(model->orig[i])];
  const std::vector<char> no_test(model->orig.size(), 0);

  model->adj = CsrMatrix::normalized_adjacency(sub.graph);
  model->features = sub.gcn_features;
  model->merged_dsp_mask = merged.dsp_mask;
  model->gcn = std::make_unique<GcnClassifier>(kNumNodeFeatures, gcn_cfg);
  model->gcn->fit(model->adj, model->features, sub.labels, sub_train, no_test);
  return model;
}

std::vector<std::vector<char>> predict_datapath_batched(TrainedDatapathGcn& model,
                                                        int copies) {
  assert(copies >= 1);
  const std::vector<const CsrMatrix*> adjs(static_cast<size_t>(copies), &model.adj);
  const std::vector<const Matrix*> feats(static_cast<size_t>(copies), &model.features);
  const CsrMatrix batched_adj = CsrMatrix::block_diagonal(adjs);
  const Matrix batched_features = Matrix::vstack(feats);
  Matrix logits;
  {
    std::lock_guard<std::mutex> lock(model.forward_mu);
    logits = model.gcn->forward(batched_adj, batched_features, /*training=*/false);
  }

  const int n = model.adj.rows();
  std::vector<std::vector<char>> out;
  out.reserve(static_cast<size_t>(copies));
  for (int c = 0; c < copies; ++c) {
    std::vector<char> is_datapath(static_cast<size_t>(model.target_nodes), 0);
    for (size_t i = 0; i < model.orig.size(); ++i) {
      const int v = model.orig[i];
      if (v < model.target_begin || !model.merged_dsp_mask[static_cast<size_t>(v)])
        continue;
      // Argmax with GcnClassifier::predict's tie rule (lowest class wins).
      const int r = c * n + static_cast<int>(i);
      int best = 0;
      for (int j = 1; j < logits.cols(); ++j)
        if (logits.at(r, j) > logits.at(r, best)) best = j;
      is_datapath[static_cast<size_t>(v - model.target_begin)] = best == 1;
    }
    out.push_back(std::move(is_datapath));
  }
  return out;
}

std::vector<char> predict_datapath(TrainedDatapathGcn& model) {
  return predict_datapath_batched(model, 1).front();
}

std::vector<char> predict_datapath_dsps(const std::vector<DesignGraphData>& train,
                                        const DesignGraphData& target,
                                        const GcnConfig& gcn_cfg) {
  const std::shared_ptr<TrainedDatapathGcn> model =
      train_datapath_gcn(train, target, gcn_cfg);
  return predict_datapath(*model);
}

uint64_t design_content_hash(const DesignGraphData& d) {
  Fnv1a h;
  h.str(d.name);
  h.i32(d.graph.num_nodes());
  h.i32(d.graph.num_edges());
  for (int u = 0; u < d.graph.num_nodes(); ++u)
    for (int v : d.graph.out(u)) h.i32(v);
  for (const Matrix* m : {&d.gcn_features, &d.local_features}) {
    h.i32(m->rows());
    h.i32(m->cols());
    for (size_t i = 0; i < m->size(); ++i) h.f64(m->data()[i]);
  }
  h.u64(d.labels.size());
  for (int l : d.labels) h.i32(l);
  h.u64(d.dsp_mask.size());
  for (char m : d.dsp_mask) h.u8(static_cast<uint8_t>(m));
  return h.digest();
}

uint64_t gcn_problem_key(const std::vector<DesignGraphData>& train,
                         const DesignGraphData& target, const GcnConfig& gcn_cfg) {
  Fnv1a h;
  h.str("datapath-gcn");
  h.u64(train.size());
  for (const DesignGraphData& d : train) h.u64(design_content_hash(d));
  h.u64(design_content_hash(target));
  h.i32(gcn_cfg.hidden);
  h.i32(gcn_cfg.fc_hidden);
  h.i32(gcn_cfg.num_classes);
  h.f64(gcn_cfg.dropout);
  h.f64(gcn_cfg.lr);
  h.f64(gcn_cfg.weight_decay);
  h.i32(gcn_cfg.epochs);
  h.u64(gcn_cfg.seed);
  return h.digest();
}

namespace {

struct WeightsMetrics {
  Counter& hit;
  Counter& miss;
};

WeightsMetrics& weights_metrics() {
  static WeightsMetrics m{
      global_metrics().counter(metric::kGcnWeightsHit,
                               "Datapath-GCN lookups served by pooled weights"),
      global_metrics().counter(metric::kGcnWeightsMiss,
                               "Datapath-GCN lookups that had to train")};
  return m;
}

}  // namespace

std::shared_ptr<TrainedDatapathGcn> GcnWeightsPool::get_or_train(
    const std::vector<DesignGraphData>& train, const DesignGraphData& target,
    const GcnConfig& gcn_cfg) {
  const uint64_t key = gcn_problem_key(train, target, gcn_cfg);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < lru_.size(); ++i) {
    if (lru_[i].first != key) continue;
    weights_metrics().hit.inc();
    std::rotate(lru_.begin(), lru_.begin() + static_cast<long>(i),
                lru_.begin() + static_cast<long>(i) + 1);
    return lru_.front().second;
  }
  weights_metrics().miss.inc();
  // Train under the lock: a second job racing on this key blocks here and
  // then hits, instead of training the same weights twice.
  std::shared_ptr<TrainedDatapathGcn> model = train_datapath_gcn(train, target, gcn_cfg);
  lru_.insert(lru_.begin(), {key, model});
  if (lru_.size() > capacity_) lru_.pop_back();
  return model;
}

GcnWeightsPool& global_gcn_weights() {
  static GcnWeightsPool* pool = new GcnWeightsPool();
  return *pool;
}

}  // namespace dsp
