#include "extract/classifier.hpp"

#include <cassert>
#include <optional>

#include "util/log.hpp"

namespace dsp {

DesignGraphData build_design_data(const Netlist& nl, const FeatureOptions& opts,
                                  ThreadPool* pool, const CsrGraph* frozen,
                                  const std::function<bool()>& cancel) {
  DesignGraphData d;
  d.name = nl.name();
  d.graph = nl.to_digraph();
  // Freeze once and feed every extractor the same flat view; the flow
  // passes its per-run frozen graph so nothing re-freezes downstream.
  std::optional<CsrGraph> local;
  const CsrGraph& csr =
      frozen != nullptr ? *frozen : local.emplace(CsrGraph::freeze(d.graph));
  d.gcn_features = extract_node_features(nl, csr, opts, pool, cancel);
  d.local_features = extract_local_features(nl, csr);
  d.labels.assign(static_cast<size_t>(nl.num_cells()), 0);
  d.dsp_mask.assign(static_cast<size_t>(nl.num_cells()), 0);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const Cell& cell = nl.cell(c);
    if (cell.type == CellType::kDsp) {
      d.dsp_mask[static_cast<size_t>(c)] = 1;
      d.labels[static_cast<size_t>(c)] = cell.role == DspRole::kDatapath ? 1 : 0;
    }
  }
  return d;
}

DesignGraphData merge_designs(const std::vector<const DesignGraphData*>& designs) {
  DesignGraphData out;
  out.name = "merged";
  int total_nodes = 0;
  for (const auto* d : designs) total_nodes += d->graph.num_nodes();
  out.graph = Digraph(total_nodes);
  out.gcn_features = Matrix(total_nodes, kNumNodeFeatures);
  out.local_features = Matrix(total_nodes, num_local_features());
  out.labels.assign(static_cast<size_t>(total_nodes), 0);
  out.dsp_mask.assign(static_cast<size_t>(total_nodes), 0);

  int offset = 0;
  for (const auto* d : designs) {
    const int n = d->graph.num_nodes();
    for (int u = 0; u < n; ++u)
      for (int v : d->graph.out(u)) out.graph.add_edge(offset + u, offset + v);
    for (int u = 0; u < n; ++u) {
      for (int j = 0; j < d->gcn_features.cols(); ++j)
        out.gcn_features.at(offset + u, j) = d->gcn_features.at(u, j);
      for (int j = 0; j < d->local_features.cols(); ++j)
        out.local_features.at(offset + u, j) = d->local_features.at(u, j);
      out.labels[static_cast<size_t>(offset + u)] = d->labels[static_cast<size_t>(u)];
      out.dsp_mask[static_cast<size_t>(offset + u)] = d->dsp_mask[static_cast<size_t>(u)];
    }
    offset += n;
  }
  return out;
}

DesignGraphData restrict_to_dsp_neighborhood(const DesignGraphData& d, int hops,
                                             std::vector<int>* orig_index) {
  const int n = d.graph.num_nodes();
  // Multi-source BFS from every DSP node, undirected, depth-limited. The
  // frozen undirected adjacency replaces per-node undirected_neighbors()
  // materialization (each frontier node used to allocate+sort its own
  // neighbor vector).
  const CsrGraph csr = CsrGraph::freeze(d.graph);
  std::vector<int> depth(static_cast<size_t>(n), -1);
  std::vector<int> frontier;
  for (int v = 0; v < n; ++v) {
    if (d.dsp_mask[static_cast<size_t>(v)]) {
      depth[static_cast<size_t>(v)] = 0;
      frontier.push_back(v);
    }
  }
  for (int h = 0; h < hops; ++h) {
    std::vector<int> next;
    for (int u : frontier) {
      for (int v : csr.undirected(u)) {
        if (depth[static_cast<size_t>(v)] < 0) {
          depth[static_cast<size_t>(v)] = h + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }

  std::vector<int> keep;
  std::vector<int> remap(static_cast<size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    if (depth[static_cast<size_t>(v)] >= 0) {
      remap[static_cast<size_t>(v)] = static_cast<int>(keep.size());
      keep.push_back(v);
    }
  }

  DesignGraphData out;
  out.name = d.name + "#dsp-hood";
  const int m = static_cast<int>(keep.size());
  out.graph = Digraph(m);
  for (int i = 0; i < m; ++i)
    for (int v : d.graph.out(keep[static_cast<size_t>(i)]))
      if (remap[static_cast<size_t>(v)] >= 0) out.graph.add_edge(i, remap[static_cast<size_t>(v)]);
  out.gcn_features = Matrix(m, d.gcn_features.cols());
  out.local_features = Matrix(m, d.local_features.cols());
  out.labels.assign(static_cast<size_t>(m), 0);
  out.dsp_mask.assign(static_cast<size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    const int v = keep[static_cast<size_t>(i)];
    for (int j = 0; j < d.gcn_features.cols(); ++j)
      out.gcn_features.at(i, j) = d.gcn_features.at(v, j);
    for (int j = 0; j < d.local_features.cols(); ++j)
      out.local_features.at(i, j) = d.local_features.at(v, j);
    out.labels[static_cast<size_t>(i)] = d.labels[static_cast<size_t>(v)];
    out.dsp_mask[static_cast<size_t>(i)] = d.dsp_mask[static_cast<size_t>(v)];
  }
  if (orig_index != nullptr) *orig_index = std::move(keep);
  return out;
}

std::vector<LeaveOneOutResult> leave_one_out(const std::vector<DesignGraphData>& designs,
                                             const GcnConfig& gcn_cfg,
                                             const SvmConfig& svm_cfg) {
  std::vector<LeaveOneOutResult> results;
  for (size_t test_idx = 0; test_idx < designs.size(); ++test_idx) {
    std::vector<const DesignGraphData*> all;
    for (size_t i = 0; i < designs.size(); ++i)
      if (i != test_idx) all.push_back(&designs[i]);
    all.push_back(&designs[test_idx]);  // test design appended LAST
    const DesignGraphData merged = merge_designs(all);

    // Masks: train rows = DSPs of the first |designs|-1 blocks; test rows =
    // DSPs of the final block. The GCN sees all edges (transductive, as in
    // the paper) but never trains on test labels.
    const int test_nodes = designs[test_idx].graph.num_nodes();
    const int total = merged.graph.num_nodes();
    const int test_begin = total - test_nodes;
    std::vector<char> train_mask(static_cast<size_t>(total), 0);
    std::vector<char> test_mask(static_cast<size_t>(total), 0);
    for (int v = 0; v < total; ++v) {
      if (!merged.dsp_mask[static_cast<size_t>(v)]) continue;
      (v < test_begin ? train_mask : test_mask)[static_cast<size_t>(v)] = 1;
    }

    LeaveOneOutResult r;
    r.test_design = designs[test_idx].name;

    // GCN on the exact 2-hop receptive field of the labeled (DSP) nodes.
    std::vector<int> orig;
    const DesignGraphData sub = restrict_to_dsp_neighborhood(merged, 2, &orig);
    std::vector<char> sub_train(orig.size(), 0), sub_test(orig.size(), 0);
    for (size_t i = 0; i < orig.size(); ++i) {
      sub_train[i] = train_mask[static_cast<size_t>(orig[i])];
      sub_test[i] = test_mask[static_cast<size_t>(orig[i])];
    }
    const CsrMatrix adj = CsrMatrix::normalized_adjacency(sub.graph);
    GcnClassifier gcn(kNumNodeFeatures, gcn_cfg);
    r.curve = gcn.fit(adj, sub.gcn_features, sub.labels, sub_train, sub_test);
    const Matrix logits = gcn.forward(adj, sub.gcn_features, /*training=*/false);
    r.gcn_accuracy = GcnClassifier::accuracy(logits, sub.labels, sub_test);

    LinearSvm svm(svm_cfg);
    svm.fit(merged.local_features, merged.labels, train_mask);
    r.svm_accuracy = svm.accuracy(merged.local_features, merged.labels, test_mask);

    LOG_INFO("classifier", "LOO %s: GCN %.3f SVM %.3f", r.test_design.c_str(),
             r.gcn_accuracy, r.svm_accuracy);
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<char> predict_datapath_dsps(const std::vector<DesignGraphData>& train,
                                        const DesignGraphData& target,
                                        const GcnConfig& gcn_cfg) {
  std::vector<const DesignGraphData*> all;
  for (const auto& d : train) all.push_back(&d);
  all.push_back(&target);
  const DesignGraphData merged = merge_designs(all);

  const int total = merged.graph.num_nodes();
  const int target_begin = total - target.graph.num_nodes();

  std::vector<int> orig;
  const DesignGraphData sub = restrict_to_dsp_neighborhood(merged, 2, &orig);
  std::vector<char> sub_train(orig.size(), 0);
  for (size_t i = 0; i < orig.size(); ++i)
    sub_train[i] = orig[i] < target_begin && merged.dsp_mask[static_cast<size_t>(orig[i])];
  const std::vector<char> no_test(orig.size(), 0);

  const CsrMatrix adj = CsrMatrix::normalized_adjacency(sub.graph);
  GcnClassifier gcn(kNumNodeFeatures, gcn_cfg);
  gcn.fit(adj, sub.gcn_features, sub.labels, sub_train, no_test);
  const std::vector<int> pred = gcn.predict(adj, sub.gcn_features);

  std::vector<char> is_datapath(static_cast<size_t>(target.graph.num_nodes()), 0);
  for (size_t i = 0; i < orig.size(); ++i) {
    const int v = orig[i];
    if (v >= target_begin && merged.dsp_mask[static_cast<size_t>(v)])
      is_datapath[static_cast<size_t>(v - target_begin)] = pred[i] == 1;
  }
  return is_datapath;
}

}  // namespace dsp
