// Datapath DSP graph construction (paper Section III-B).
//
// IDDFS runs from every DSP cell over the netlist graph and records, for
// each other DSP reachable without tunneling through a third DSP, the
// shortest path, its length, and the cell types along it. The resulting
// DSP graph carries the dataflow topology that drives the assignment
// objective; a pruning step then drops control-path DSPs (as identified by
// the GCN) so the placement stays compact.
#pragma once

#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/digraph.hpp"
#include "netlist/netlist.hpp"

namespace dsp {

class ThreadPool;

struct DspGraphEdge {
  int from = 0;  // index into DspGraph::dsps
  int to = 0;
  int distance = 0;       // netlist-graph hops
  int luts_on_path = 0;   // combinational cells along the shortest path
  int ffs_on_path = 0;    // storage cells along the shortest path
  int rams_on_path = 0;   // BRAM/LUTRAM along the shortest path
};

struct DspGraph {
  std::vector<CellId> dsps;       // DSP cells, graph-local index order
  std::vector<DspGraphEdge> edges;
  std::vector<std::vector<int>> adj;  // out-edge indices per local node
  long long nodes_visited = 0;        // IDDFS expansions spent building it

  int num_nodes() const { return static_cast<int>(dsps.size()); }
  int num_edges() const { return static_cast<int>(edges.size()); }

  /// Local index of a DSP cell, or -1.
  int local_index(CellId c) const;

  /// Mean shortest-path distance from each DSP to the others it connects
  /// to (feature (g) as defined over the DSP graph).
  std::vector<double> mean_dsp_distance() const;
};

struct DspGraphOptions {
  int max_depth = 12;  // IDDFS depth bound for DSP-to-DSP paths
};

/// Builds the full DSP graph (all DSPs, datapath and control). Per-source
/// IDDFS walks run on `pool` (nullptr: the global pool); the result is
/// identical for any thread count.
///
/// The CsrGraph overload is the hot path: IDDFS walks the frozen flat
/// adjacency with per-chunk leased workspaces, and `cancel` (optional,
/// must be thread-safe) is polled between source chunks — when it fires,
/// remaining chunks are skipped and the partial graph is meaningless
/// (callers treat the computation as cancelled). The Digraph overload
/// freezes internally and is result-identical.
DspGraph build_dsp_graph(const Netlist& nl, const Digraph& g,
                         const DspGraphOptions& opts = {},
                         ThreadPool* pool = nullptr);
DspGraph build_dsp_graph(const Netlist& nl, const CsrGraph& g,
                         const DspGraphOptions& opts = {},
                         ThreadPool* pool = nullptr,
                         const std::function<bool()>& cancel = nullptr);

/// Returns a copy containing only the DSPs where keep[cell] is true
/// (edges between surviving nodes are kept, indices remapped).
DspGraph prune_dsp_graph(const DspGraph& graph, const std::vector<char>& keep);

class ByteWriter;
class ByteReader;

/// Binary (little-endian) DSP-graph record for stage checkpoints
/// (docs/TRACE_FORMAT.md): nodes, edges, adjacency, IDDFS work counter.
void write_dsp_graph_binary(const DspGraph& graph, ByteWriter& w);

/// Reads a write_dsp_graph_binary record. Returns "" on success or a
/// diagnostic; every cell id, edge endpoint, and adjacency index is
/// bounds-checked against `nl` / the graph itself so corrupt input can
/// never produce an out-of-range graph.
std::string read_dsp_graph_binary(ByteReader& r, const Netlist& nl, DspGraph* out);

}  // namespace dsp
