#include "netlist/netlist.hpp"

#include <cassert>
#include <sstream>

namespace dsp {

const char* cell_type_name(CellType t) {
  switch (t) {
    case CellType::kLut: return "LUT";
    case CellType::kLutRam: return "LUTRAM";
    case CellType::kFlipFlop: return "FF";
    case CellType::kCarry: return "CARRY";
    case CellType::kDsp: return "DSP";
    case CellType::kBram: return "BRAM";
    case CellType::kIo: return "IO";
    case CellType::kPsPort: return "PSPORT";
  }
  return "?";
}

CellId Netlist::add_cell(const std::string& name, CellType type) {
  const CellId id = static_cast<CellId>(cells_.size());
  Cell c;
  c.name = name;
  c.type = type;
  if (type == CellType::kDsp) c.role = DspRole::kDatapath;  // default; callers refine
  cells_.push_back(std::move(c));
  driven_.emplace_back();
  sunk_.emplace_back();
  name_to_cell_.emplace(name, id);
  return id;
}

NetId Netlist::add_net(const std::string& name, CellId driver, std::vector<CellId> sinks) {
  assert(driver >= 0 && driver < num_cells());
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = name;
  n.driver = driver;
  n.sinks = std::move(sinks);
  driven_[static_cast<size_t>(driver)].push_back(id);
  for (CellId s : n.sinks) {
    assert(s >= 0 && s < num_cells());
    sunk_[static_cast<size_t>(s)].push_back(id);
  }
  nets_.push_back(std::move(n));
  return id;
}

void Netlist::add_sink(NetId net, CellId sink) {
  assert(net >= 0 && net < num_nets() && sink >= 0 && sink < num_cells());
  nets_[static_cast<size_t>(net)].sinks.push_back(sink);
  sunk_[static_cast<size_t>(sink)].push_back(net);
}

int Netlist::add_cascade_chain(const std::vector<CellId>& cells) {
  const int chain_id = static_cast<int>(chains_.size());
  CascadeChain chain;
  chain.cells = cells;
  for (size_t i = 0; i < cells.size(); ++i) {
    Cell& c = cells_[static_cast<size_t>(cells[i])];
    assert(c.type == CellType::kDsp && "cascade chains contain only DSPs");
    c.cascade_chain = chain_id;
    c.cascade_pos = static_cast<int>(i);
  }
  chains_.push_back(std::move(chain));
  return chain_id;
}

void Netlist::set_dsp_role(CellId cell, DspRole role) {
  cells_[static_cast<size_t>(cell)].role = role;
}

void Netlist::set_fixed(CellId cell, double x, double y) {
  Cell& c = cells_[static_cast<size_t>(cell)];
  c.fixed = true;
  c.fixed_x = x;
  c.fixed_y = y;
}

std::optional<CellId> Netlist::find_cell(const std::string& name) const {
  auto it = name_to_cell_.find(name);
  if (it == name_to_cell_.end()) return std::nullopt;
  return it->second;
}

std::vector<CellId> Netlist::cells_of_type(CellType t) const {
  std::vector<CellId> out;
  for (CellId i = 0; i < num_cells(); ++i)
    if (cells_[static_cast<size_t>(i)].type == t) out.push_back(i);
  return out;
}

int Netlist::count_type(CellType t) const {
  int n = 0;
  for (const auto& c : cells_)
    if (c.type == t) ++n;
  return n;
}

Digraph Netlist::to_digraph() const {
  Digraph g(num_cells());
  for (const auto& n : nets_)
    for (CellId s : n.sinks)
      if (s != n.driver) g.add_edge_unique(n.driver, s);
  return g;
}

std::string Netlist::validate() const {
  std::ostringstream err;
  for (NetId i = 0; i < num_nets(); ++i) {
    const Net& n = nets_[static_cast<size_t>(i)];
    if (n.driver < 0 || n.driver >= num_cells()) {
      err << "net " << n.name << ": invalid driver\n";
      continue;
    }
    for (CellId s : n.sinks)
      if (s < 0 || s >= num_cells()) err << "net " << n.name << ": invalid sink\n";
  }
  for (int ci = 0; ci < num_chains(); ++ci) {
    const auto& chain = chains_[static_cast<size_t>(ci)];
    if (chain.cells.empty()) err << "chain " << ci << ": empty\n";
    for (size_t k = 0; k < chain.cells.size(); ++k) {
      const CellId id = chain.cells[k];
      if (id < 0 || id >= num_cells()) {
        err << "chain " << ci << ": invalid cell id\n";
        continue;
      }
      const Cell& c = cells_[static_cast<size_t>(id)];
      if (c.type != CellType::kDsp) err << "chain " << ci << ": non-DSP member " << c.name << '\n';
      if (c.cascade_chain != ci || c.cascade_pos != static_cast<int>(k))
        err << "chain " << ci << ": inconsistent stamp on " << c.name << '\n';
    }
  }
  return err.str();
}

}  // namespace dsp
