// Resource statistics for a netlist — the quantities of the paper's Table I.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace dsp {

struct DesignStats {
  std::string design;
  int num_lut = 0;
  int num_lutram = 0;
  int num_ff = 0;
  int num_carry = 0;
  int num_bram = 0;
  int num_dsp = 0;
  int num_datapath_dsp = 0;  // ground-truth labels when available
  int num_control_dsp = 0;
  int num_chains = 0;
  int num_nets = 0;
  double target_freq_mhz = 0.0;  // the design's timing target (Table I "freq.")

  /// DSP utilization relative to a device's DSP capacity.
  double dsp_utilization(int device_dsp_capacity) const {
    return device_dsp_capacity > 0
               ? static_cast<double>(num_dsp) / device_dsp_capacity
               : 0.0;
  }
};

/// Counts resources; `target_freq_mhz` is carried through for reporting.
DesignStats compute_stats(const Netlist& nl, double target_freq_mhz = 0.0);

}  // namespace dsp
