#include "netlist/netlist_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace dsp {
namespace {

CellType parse_type(const std::string& s, int line_no) {
  if (s == "LUT") return CellType::kLut;
  if (s == "LUTRAM") return CellType::kLutRam;
  if (s == "FF") return CellType::kFlipFlop;
  if (s == "CARRY") return CellType::kCarry;
  if (s == "DSP") return CellType::kDsp;
  if (s == "BRAM") return CellType::kBram;
  if (s == "IO") return CellType::kIo;
  if (s == "PSPORT") return CellType::kPsPort;
  throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                           ": unknown cell type '" + s + "'");
}

}  // namespace

std::string write_netlist(const Netlist& nl) {
  std::ostringstream os;
  os << "design " << nl.name() << '\n';
  for (CellId i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cell(i);
    os << "cell " << c.name << ' ' << cell_type_name(c.type);
    if (c.role == DspRole::kDatapath) os << " role=datapath";
    if (c.role == DspRole::kControl) os << " role=control";
    if (c.fixed) os << " fixed=" << c.fixed_x << ',' << c.fixed_y;
    os << '\n';
  }
  for (NetId i = 0; i < nl.num_nets(); ++i) {
    const Net& n = nl.net(i);
    os << "net " << n.name << ' ' << nl.cell(n.driver).name;
    for (CellId s : n.sinks) os << ' ' << nl.cell(s).name;
    os << '\n';
  }
  for (int ci = 0; ci < nl.num_chains(); ++ci) {
    os << "chain";
    for (CellId c : nl.chain(ci).cells) os << ' ' << nl.cell(c).name;
    os << '\n';
  }
  return os.str();
}

Netlist read_netlist(const std::string& text) {
  Netlist nl;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto resolve = [&](const std::string& name) -> CellId {
    auto id = nl.find_cell(name);
    if (!id)
      throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                               ": unknown cell '" + name + "'");
    return *id;
  };
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "design") {
      std::string name;
      ls >> name;
      nl.set_name(name);
    } else if (kw == "cell") {
      std::string name, type;
      if (!(ls >> name >> type))
        throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                                 ": cell needs <name> <type>");
      const CellId id = nl.add_cell(name, parse_type(type, line_no));
      std::string attr;
      while (ls >> attr) {
        if (attr == "role=datapath") {
          nl.set_dsp_role(id, DspRole::kDatapath);
        } else if (attr == "role=control") {
          nl.set_dsp_role(id, DspRole::kControl);
        } else if (attr.rfind("fixed=", 0) == 0) {
          const auto comma = attr.find(',');
          if (comma == std::string::npos)
            throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                                     ": fixed=<x>,<y> expected");
          const double x = std::stod(attr.substr(6, comma - 6));
          const double y = std::stod(attr.substr(comma + 1));
          nl.set_fixed(id, x, y);
        } else {
          throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                                   ": unknown attribute '" + attr + "'");
        }
      }
    } else if (kw == "net") {
      std::string name, driver;
      if (!(ls >> name >> driver))
        throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                                 ": net needs <name> <driver>");
      std::vector<CellId> sinks;
      std::string sink;
      while (ls >> sink) sinks.push_back(resolve(sink));
      nl.add_net(name, resolve(driver), std::move(sinks));
    } else if (kw == "chain") {
      std::vector<CellId> members;
      std::string name;
      while (ls >> name) members.push_back(resolve(name));
      if (members.empty())
        throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                                 ": empty chain");
      nl.add_cascade_chain(members);
    } else {
      throw std::runtime_error("netlist parse error line " + std::to_string(line_no) +
                               ": unknown keyword '" + kw + "'");
    }
  }
  return nl;
}

bool save_netlist(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << write_netlist(nl);
  return static_cast<bool>(f);
}

Netlist load_netlist(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open netlist file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return read_netlist(ss.str());
}

uint64_t netlist_content_hash(const Netlist& nl) {
  Fnv1a h;
  h.str("netlist-v1");
  h.str(nl.name());
  h.i32(nl.num_cells());
  for (CellId i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cell(i);
    h.str(c.name);
    h.u8(static_cast<uint8_t>(c.type));
    h.u8(static_cast<uint8_t>(c.role));
    h.i32(c.cascade_chain);
    h.i32(c.cascade_pos);
    h.boolean(c.fixed);
    if (c.fixed) {
      h.f64(c.fixed_x);
      h.f64(c.fixed_y);
    }
  }
  h.i32(nl.num_nets());
  for (NetId i = 0; i < nl.num_nets(); ++i) {
    const Net& n = nl.net(i);
    h.str(n.name);
    h.i32(n.driver);
    h.u64(n.sinks.size());
    for (CellId s : n.sinks) h.i32(s);
    h.f64(n.weight);
  }
  h.i32(nl.num_chains());
  for (int ci = 0; ci < nl.num_chains(); ++ci) {
    const auto& chain = nl.chain(ci).cells;
    h.u64(chain.size());
    for (CellId c : chain) h.i32(c);
  }
  return h.digest();
}

}  // namespace dsp
