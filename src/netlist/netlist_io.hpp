// Plain-text netlist serialization.
//
// Format (one record per line, '#' comments):
//   design <name>
//   cell <name> <TYPE> [role=datapath|control] [fixed=<x>,<y>]
//   net <name> <driver> <sink> [<sink> ...]
//   chain <cell> <cell> ...
//
// Deterministic round-trip: write(read(s)) == s up to comment/whitespace.
// Used by examples, tests, and for dumping generated benchmarks.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace dsp {

/// Serializes `nl` into the text format above.
std::string write_netlist(const Netlist& nl);

/// Parses the text format. Throws std::runtime_error with a line-numbered
/// message on malformed input.
Netlist read_netlist(const std::string& text);

/// File helpers; return false / throw on I/O failure respectively.
bool save_netlist(const Netlist& nl, const std::string& path);
Netlist load_netlist(const std::string& path);

/// Content hash of the netlist structure (name, cells with types / roles /
/// chain stamps / pinned coordinates, nets, cascade chains). The primary
/// ingredient of the stage checkpoint cache's root key
/// (docs/ARCHITECTURE.md): two netlists hash equal iff the flow cannot
/// tell them apart.
uint64_t netlist_content_hash(const Netlist& nl);

}  // namespace dsp
