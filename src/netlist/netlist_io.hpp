// Plain-text netlist serialization.
//
// Format (one record per line, '#' comments):
//   design <name>
//   cell <name> <TYPE> [role=datapath|control] [fixed=<x>,<y>]
//   net <name> <driver> <sink> [<sink> ...]
//   chain <cell> <cell> ...
//
// Deterministic round-trip: write(read(s)) == s up to comment/whitespace.
// Used by examples, tests, and for dumping generated benchmarks.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace dsp {

/// Serializes `nl` into the text format above.
std::string write_netlist(const Netlist& nl);

/// Parses the text format. Throws std::runtime_error with a line-numbered
/// message on malformed input.
Netlist read_netlist(const std::string& text);

/// File helpers; return false / throw on I/O failure respectively.
bool save_netlist(const Netlist& nl, const std::string& path);
Netlist load_netlist(const std::string& path);

}  // namespace dsp
