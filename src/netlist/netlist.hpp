// Pre-implementation netlist model (paper Section II-B input).
//
// A netlist is a set of typed cells connected by driver->sinks nets
// (directed hyperedges), plus DSP-specific structure: cascade chains (DSP
// macros whose members must occupy vertically adjacent sites of one DSP
// column, paper constraint (5)) and ground-truth datapath/control roles
// (available for generated designs; used to train/evaluate the GCN
// classifier exactly as the paper's labeled benchmarks are).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"

namespace dsp {

enum class CellType : uint8_t {
  kLut,
  kLutRam,
  kFlipFlop,
  kCarry,
  kDsp,
  kBram,
  kIo,      // programmable-logic I/O pad
  kPsPort,  // fixed processing-system interface port (bottom-left corner)
};

const char* cell_type_name(CellType t);

/// Role of a DSP cell in the design. Generated benchmarks know the truth;
/// the extraction stage predicts it for "unseen" designs.
enum class DspRole : uint8_t {
  kNotDsp,
  kDatapath,
  kControl,
};

using CellId = int32_t;
using NetId = int32_t;
inline constexpr CellId kInvalidCell = -1;

struct Cell {
  std::string name;
  CellType type = CellType::kLut;
  DspRole role = DspRole::kNotDsp;  // ground truth (generated designs only)
  int cascade_chain = -1;           // chain id, -1 if not in a DSP macro
  int cascade_pos = -1;             // index within the chain, 0 = head
  bool fixed = false;               // PS ports / IO pads with pinned sites
  double fixed_x = 0.0;             // valid when fixed
  double fixed_y = 0.0;
};

struct Net {
  std::string name;
  CellId driver = kInvalidCell;
  std::vector<CellId> sinks;
  double weight = 1.0;  // criticality weight usable by timing-driven passes

  int degree() const { return 1 + static_cast<int>(sinks.size()); }
};

/// A DSP macro: ordered cell ids; member i drives member i+1 through the
/// dedicated cascade path (PCOUT->PCIN), so legal placement requires
/// adjacent rows of one column, in order.
struct CascadeChain {
  std::vector<CellId> cells;
  int length() const { return static_cast<int>(cells.size()); }
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------
  CellId add_cell(const std::string& name, CellType type);
  NetId add_net(const std::string& name, CellId driver, std::vector<CellId> sinks);
  void add_sink(NetId net, CellId sink);

  /// Registers `cells` (in dataflow order) as one cascade macro and stamps
  /// each member's chain/pos fields. Cells must be DSPs.
  int add_cascade_chain(const std::vector<CellId>& cells);

  void set_dsp_role(CellId cell, DspRole role);
  void set_fixed(CellId cell, double x, double y);

  // ---- accessors -----------------------------------------------------------
  int num_cells() const { return static_cast<int>(cells_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }
  int num_chains() const { return static_cast<int>(chains_.size()); }

  const Cell& cell(CellId id) const { return cells_[static_cast<size_t>(id)]; }
  Cell& cell(CellId id) { return cells_[static_cast<size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<size_t>(id)]; }
  const CascadeChain& chain(int id) const { return chains_[static_cast<size_t>(id)]; }

  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<CascadeChain>& chains() const { return chains_; }

  /// Nets where the cell is the driver / one of the sinks.
  const std::vector<NetId>& nets_driven_by(CellId c) const {
    return driven_[static_cast<size_t>(c)];
  }
  const std::vector<NetId>& nets_sinking(CellId c) const {
    return sunk_[static_cast<size_t>(c)];
  }

  std::optional<CellId> find_cell(const std::string& name) const;

  std::vector<CellId> cells_of_type(CellType t) const;
  int count_type(CellType t) const;

  /// Lowers the hypergraph to a Digraph: node = cell, and each net
  /// contributes driver->sink edges (deduplicated). This is the graph
  /// representation of Fig. 3(b).
  Digraph to_digraph() const;

  /// Structural sanity: net endpoints valid, chain members are DSPs with
  /// consistent chain/pos stamps. Returns an error string or empty if OK.
  std::string validate() const;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CascadeChain> chains_;
  std::vector<std::vector<NetId>> driven_;
  std::vector<std::vector<NetId>> sunk_;
  std::unordered_map<std::string, CellId> name_to_cell_;
};

}  // namespace dsp
