#include "netlist/stats.hpp"

namespace dsp {

DesignStats compute_stats(const Netlist& nl, double target_freq_mhz) {
  DesignStats s;
  s.design = nl.name();
  s.target_freq_mhz = target_freq_mhz;
  for (const auto& c : nl.cells()) {
    switch (c.type) {
      case CellType::kLut: ++s.num_lut; break;
      case CellType::kLutRam: ++s.num_lutram; break;
      case CellType::kFlipFlop: ++s.num_ff; break;
      case CellType::kCarry: ++s.num_carry; break;
      case CellType::kBram: ++s.num_bram; break;
      case CellType::kDsp:
        ++s.num_dsp;
        if (c.role == DspRole::kDatapath) ++s.num_datapath_dsp;
        if (c.role == DspRole::kControl) ++s.num_control_dsp;
        break;
      case CellType::kIo:
      case CellType::kPsPort:
        break;
    }
  }
  s.num_chains = nl.num_chains();
  s.num_nets = nl.num_nets();
  return s;
}

}  // namespace dsp
