// Single-threaded epoll event loop — the async front end's reactor
// (docs/SERVER.md, "Front ends"; docs/ARCHITECTURE.md, `src/net`).
//
// One loop thread owns accept, read, and write for every connection:
// listeners and connections register level-triggered interest with one
// epoll instance, and all connection state is touched only from the loop
// thread, so the per-connection code needs no locks at all. Two auxiliary
// descriptors multiplex everything else into the same epoll_wait:
//
//  - an eventfd wakes the loop when another thread posts a closure
//    (`post()` / `run_sync()`), which is how worker threads deliver job
//    replies back onto connections they must not touch directly;
//  - a timerfd (CLOCK_MONOTONIC, absolute) tracks the earliest entry of
//    a min-heap of armed timers — the deadline wheel that expires
//    still-queued jobs without a watcher thread.
//
// The loop never blocks on a socket: listeners and connections are
// non-blocking, reads and writes retry on the next readiness event, and
// the only blocking call is epoll_wait itself. `stop()` tears down from
// the loop thread (posted internally), closing every connection and then
// joining the thread.
#pragma once

#include "net/buffer_pool.hpp"
#include "server/socket.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dsp {

class Connection;

/// Cancellable handle for an armed timer. Zero = never armed.
using TimerId = uint64_t;

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. Call after registering initial listeners.
  /// False + *error if the epoll/eventfd/timerfd plumbing failed.
  bool start(std::string* error);

  /// Closes every connection and listener and joins the loop thread.
  /// Idempotent. Safe from any thread except the loop thread itself.
  void stop();

  /// Registers a listening socket; `on_accept` runs on the loop thread
  /// once per accepted connection. Call before start() or on the loop
  /// thread. The listener fd is made non-blocking and owned by the loop.
  void add_listener(SocketFd listener, std::function<void(SocketFd)> on_accept);

  /// Unregisters and closes every listener (drain entry: no new accepts,
  /// existing connections live on). Loop thread only — run_sync() it.
  void remove_listeners();

  /// Adopts a connected socket into the loop: makes it non-blocking,
  /// registers EPOLLIN, and returns the connection handle. Loop thread
  /// only. The returned pointer stays valid until `Connection::close()`
  /// or loop teardown destroys it — see connection.hpp for the contract.
  Connection* adopt(SocketFd socket);

  /// Enqueues `fn` to run on the loop thread (FIFO order; wakes the loop
  /// via eventfd). Safe from any thread, including the loop thread.
  /// After stop() completes, posted closures are discarded.
  void post(std::function<void()> fn);

  /// post() + wait for `fn` to finish. Runs inline when already on the
  /// loop thread, so loop-thread callers cannot self-deadlock.
  void run_sync(const std::function<void()>& fn);

  /// Arms a one-shot timer firing at `deadline`; `fn` runs on the loop
  /// thread. Loop thread only. Returns a handle for cancel_timer().
  TimerId add_timer(std::chrono::steady_clock::time_point deadline,
                    std::function<void()> fn);

  /// Lazy cancel: the heap entry stays but its closure is dropped.
  /// Loop thread only. Cancelling a fired/unknown id is a no-op.
  void cancel_timer(TimerId id);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_id_.load();
  }

  /// Connections currently registered (accepted and not yet destroyed).
  int64_t open_connections() const { return open_connections_.load(); }

  BufferPool& buffer_pool() { return pool_; }

 private:
  friend class Connection;

  struct Listener {
    SocketFd fd;
    std::function<void(SocketFd)> on_accept;
  };
  struct Timer {
    std::chrono::steady_clock::time_point when;
    TimerId id;
    bool operator>(const Timer& other) const {
      return when != other.when ? when > other.when : id > other.id;
    }
  };

  void run();
  void handle_accept(Listener& listener);
  void drain_posted();
  void fire_due_timers();
  void rearm_timerfd();
  void update_epoll(int fd, uint32_t events, int op);
  void destroy_connection(Connection* conn);
  void close_all_connections();

  SocketFd epoll_fd_;
  SocketFd wake_fd_;   // eventfd
  SocketFd timer_fd_;  // timerfd
  BufferPool pool_;

  std::thread loop_thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;

  // Everything below is loop-thread-only after start().
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  // close() runs while the closing connection's own handler is still on
  // the stack; the corpse parks here until the dispatch batch ends.
  std::vector<std::unique_ptr<Connection>> graveyard_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;
  TimerId next_timer_id_ = 1;
  std::atomic<int64_t> open_connections_{0};
};

}  // namespace dsp
