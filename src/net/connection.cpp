#include "net/connection.hpp"

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"
#include "net/event_loop.hpp"

#include <sys/epoll.h>

#include <cerrno>
#include <utility>

namespace dsp {
namespace {

Histogram& write_stall_metric() {
  static Histogram& h = global_metrics().histogram(
      metric::kNetWriteStallUs,
      "time a connection's reply queue waited on EPOLLOUT, microseconds",
      default_latency_buckets_us());
  return h;
}

}  // namespace

Connection::Connection(EventLoop* loop, SocketFd socket, uint64_t id)
    : loop_(loop), sock_(std::move(socket)), id_(id) {
  // Register the stall histogram up front: a zero-count series on a
  // stall-free server is a healthy signal, an absent one is ambiguous.
  write_stall_metric();
}

void Connection::handle_readable() {
  if (reads_stopped_ || close_after_flush_) {
    // Drain-and-discard so a talkative peer cannot keep the fd readable
    // forever; peer hangup still surfaces through the recv below.
    char sink[4096];
    const long got = recv_some(sock_.fd(), sink, sizeof sink);
    if (got > 0) return;
    if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      if (on_close_) on_close_(*this, false);
      close();
    }
    return;
  }

  std::string scratch = loop_->buffer_pool().acquire();
  scratch.resize(16 * 1024);
  const long got = recv_some(sock_.fd(), scratch.data(), scratch.size());
  if (got > 0) decoder_.feed(scratch.data(), static_cast<size_t>(got));
  loop_->buffer_pool().release(std::move(scratch));

  if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
  if (got <= 0) {
    if (on_close_) on_close_(*this, decoder_.pending_bytes() > 0);
    close();
    return;
  }

  Frame frame;
  while (decoder_.next(&frame)) {
    if (on_frame_) on_frame_(*this, frame.type, std::move(frame.payload));
    // A handler may have closed-after-flush (e.g. replied with an error);
    // stop dispatching the rest of the batch if so.
    if (close_after_flush_ || reads_stopped_) break;
  }
  if (!decoder_.error().empty() && !reads_stopped_) {
    reads_stopped_ = true;
    if (on_protocol_error_) on_protocol_error_(*this, decoder_.error());
  }
}

void Connection::handle_writable() { try_flush(); }

void Connection::queue_frame(MsgType type, std::string_view payload) {
  std::string buf = loop_->buffer_pool().acquire();
  encode_frame_append(type, payload, &buf);
  out_bytes_ += buf.size();
  out_.push_back(std::move(buf));
  try_flush();
}

void Connection::try_flush() {
  while (!out_.empty()) {
    const std::string& head = out_.front();
    const long sent = send_some(sock_.fd(), head.data() + out_front_off_,
                                head.size() - out_front_off_);
    if (sent < 0) {
      // Broken pipe: the peer is gone, queued replies are undeliverable.
      if (on_close_) on_close_(*this, false);
      close();
      return;
    }
    out_bytes_ -= static_cast<size_t>(sent);
    out_front_off_ += static_cast<size_t>(sent);
    if (out_front_off_ < out_.front().size()) {
      // Kernel buffer full mid-buffer: wait for EPOLLOUT.
      if (!stalled_) {
        stalled_ = true;
        stall_start_ = std::chrono::steady_clock::now();
      }
      update_write_interest(true);
      return;
    }
    loop_->buffer_pool().release(std::move(out_.front()));
    out_.pop_front();
    out_front_off_ = 0;
  }
  finish_stall_clock();
  update_write_interest(false);
  if (close_after_flush_) close();
}

void Connection::finish_stall_clock() {
  if (!stalled_) return;
  stalled_ = false;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - stall_start_)
                      .count();
  write_stall_metric().observe(us);
}

void Connection::update_write_interest(bool want) {
  if (want == write_armed_) return;
  write_armed_ = want;
  loop_->update_epoll(sock_.fd(), EPOLLIN | (want ? EPOLLOUT : 0u),
                      EPOLL_CTL_MOD);
}

void Connection::close_after_flush() {
  if (out_.empty()) {
    close();
    return;
  }
  close_after_flush_ = true;
}

void Connection::close() {
  // Recycle queued buffers before the object dies so the pool's
  // outstanding count reflects reality even on abrupt closes.
  while (!out_.empty()) {
    loop_->buffer_pool().release(std::move(out_.front()));
    out_.pop_front();
  }
  out_bytes_ = 0;
  stalled_ = false;
  loop_->destroy_connection(this);  // `this` is gone after the call
}

}  // namespace dsp
