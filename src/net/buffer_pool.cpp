#include "net/buffer_pool.hpp"

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"

#include <algorithm>
#include <utility>

namespace dsp {
namespace {

Counter& acquired_metric() {
  static Counter& c = global_metrics().counter(
      metric::kNetBufferPoolAcquired,
      "net frame buffers handed out (free-list reuses included)");
  return c;
}

Counter& created_metric() {
  static Counter& c = global_metrics().counter(
      metric::kNetBufferPoolCreated,
      "net frame buffers heap-constructed (free-list misses)");
  return c;
}

}  // namespace

std::string BufferPool::acquire() {
  std::string buf;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquired;
    ++stats_.outstanding;
    stats_.high_watermark = std::max(stats_.high_watermark, stats_.outstanding);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
    } else {
      ++stats_.created;
      fresh = true;
    }
  }
  if (fresh) {
    buf.reserve(reserve_bytes_);
    created_metric().inc();
  }
  acquired_metric().inc();
  return buf;
}

void BufferPool::release(std::string buf) {
  buf.clear();
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.outstanding;
  free_.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dsp
