// Per-connection state machine for the epoll front end.
//
// A Connection owns one non-blocking client socket registered with its
// EventLoop. All of its state — decoder, output queue, callbacks — is
// touched only from the loop thread; other threads reach a connection by
// posting closures through the loop (the server's reply path does exactly
// that). Lifetime contract: the loop owns the object, and it dies in
// exactly three ways, all on the loop thread — `close()`, the peer
// hanging up (after `on_close` returns), or loop teardown. A raw
// `Connection*` captured into a posted closure is therefore only safe to
// touch if the caller re-validates it still exists (the server keys
// connections by id for this reason).
//
// Read path: EPOLLIN → recv into a pooled scratch buffer → feed the
// incremental FrameDecoder → one `on_frame` per complete frame. Decoder
// errors are sticky: reads stop and `on_protocol_error` fires once —
// the server replies with a kError frame and closes after flush.
//
// Write path: `queue_frame` encodes into a pooled buffer, appends it to
// the output deque, and flushes as far as the kernel allows. A short
// write leaves the remainder queued, arms EPOLLOUT, and stamps the stall
// start; when the queue drains the loop disarms EPOLLOUT and observes the
// stall in `dsplacer_net_write_stall_us` — the histogram that shows
// slow-reader backpressure. `buffered_out_bytes()` is the hook for the
// server's per-connection output bound (BUSY above the limit).
#pragma once

#include "server/protocol.hpp"
#include "server/socket.hpp"

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

namespace dsp {

class EventLoop;

class Connection {
 public:
  /// Payload is moved in; handler may keep it.
  using FrameHandler = std::function<void(Connection&, MsgType, std::string&&)>;
  /// Fired once, with the sticky decoder diagnostic. Reads have stopped;
  /// the connection stays writable so an error frame can be flushed.
  using ProtocolErrorHandler =
      std::function<void(Connection&, const std::string&)>;
  /// Peer closed or the socket failed. `partial_frame` = bytes of an
  /// incomplete frame were pending (the mid-frame-hangup "truncated"
  /// case). The connection is destroyed right after this returns.
  using CloseHandler = std::function<void(Connection&, bool partial_frame)>;

  Connection(EventLoop* loop, SocketFd socket, uint64_t id);
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_on_frame(FrameHandler h) { on_frame_ = std::move(h); }
  void set_on_protocol_error(ProtocolErrorHandler h) {
    on_protocol_error_ = std::move(h);
  }
  void set_on_close(CloseHandler h) { on_close_ = std::move(h); }

  /// Monotone per-loop id — the stable key for server-side maps.
  uint64_t id() const { return id_; }
  int fd() const { return sock_.fd(); }

  /// Encodes a frame into a pooled buffer, queues it, and flushes what
  /// the kernel will take now. Loop thread only.
  void queue_frame(MsgType type, std::string_view payload);

  /// Reply bytes queued but not yet accepted by the kernel.
  size_t buffered_out_bytes() const { return out_bytes_; }

  /// Destroys the connection once the output queue drains (immediately
  /// if it is already empty). Further reads are ignored.
  void close_after_flush();

  /// Destroys the connection now; queued output is dropped. `this` is
  /// invalid after the call. Loop thread only.
  void close();

 private:
  friend class EventLoop;

  // EventLoop dispatch entry points (loop thread).
  void handle_readable();
  void handle_writable();

  void try_flush();
  void update_write_interest(bool want);
  void finish_stall_clock();

  EventLoop* loop_;
  SocketFd sock_;
  const uint64_t id_;

  FrameHandler on_frame_;
  ProtocolErrorHandler on_protocol_error_;
  CloseHandler on_close_;

  FrameDecoder decoder_;
  bool reads_stopped_ = false;   // sticky decoder error reported
  bool close_after_flush_ = false;
  bool write_armed_ = false;     // EPOLLOUT currently registered

  std::deque<std::string> out_;  // pooled buffers; front partially sent
  size_t out_front_off_ = 0;     // bytes of out_.front() already written
  size_t out_bytes_ = 0;
  std::chrono::steady_clock::time_point stall_start_{};
  bool stalled_ = false;
};

}  // namespace dsp
