// Reusable frame-buffer pool for the async network front end
// (docs/SERVER.md, "Front ends"). The event loop churns through two kinds
// of byte buffers at high rate — read scratch space and queued reply
// frames — and a naive implementation would heap-allocate one per read
// and per reply. BufferPool instead recycles `std::string` buffers whose
// capacity survives the release/acquire cycle: after warm-up every
// acquire is a free-list pop and the steady state allocates nothing, no
// matter how many connections are live.
//
// The pool is deliberately tiny API-wise (acquire/release + stats). It is
// thread-safe, but in practice almost every call comes from the event
// loop thread; the mutex is uncontended and exists so tests and the
// occasional cross-thread release stay correct.
//
// `created` vs `acquired` is the health signal: `acquired` climbs with
// traffic forever, `created` must plateau at the high-watermark of
// simultaneously-outstanding buffers — a `created` series that keeps
// climbing means buffers are leaking or the watermark keeps growing
// (docs/METRICS.md, `dsplacer_net_buffer_pool_created_total`).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dsp {

class BufferPool {
 public:
  /// `reserve_bytes` is the capacity given to freshly created buffers so
  /// the common small frame never reallocates; recycled buffers keep
  /// whatever larger capacity their past lives grew.
  explicit BufferPool(size_t reserve_bytes = 16 * 1024)
      : reserve_bytes_(reserve_bytes) {}

  /// An empty buffer with retained capacity. Moves out of the free list
  /// when possible; creates (and counts) a new one otherwise.
  std::string acquire();

  /// Returns a buffer to the free list. The buffer is cleared but its
  /// capacity is kept — that retained capacity is the whole point.
  void release(std::string buf);

  struct Stats {
    int64_t acquired = 0;        // total acquires (reuses included)
    int64_t created = 0;         // heap-constructed buffers (free-list misses)
    int64_t outstanding = 0;     // acquired but not yet released
    int64_t high_watermark = 0;  // max simultaneous outstanding ever
  };
  Stats stats() const;

 private:
  const size_t reserve_bytes_;
  mutable std::mutex mu_;
  std::vector<std::string> free_;
  Stats stats_;
};

}  // namespace dsp
