#include "net/event_loop.hpp"

#include "metrics/metrics.hpp"
#include "metrics/names.hpp"
#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

namespace dsp {
namespace {

Counter& accepts_metric() {
  static Counter& c = global_metrics().counter(
      metric::kNetAccepts, "connections accepted by the event loop");
  return c;
}

Counter& wakeups_metric() {
  static Counter& c = global_metrics().counter(
      metric::kNetEpollWakeups,
      "epoll_wait returns (events dispatched per wakeup = batching)");
  return c;
}

Gauge& open_gauge() {
  static Gauge& g = global_metrics().gauge(
      metric::kNetConnectionsOpen,
      "connections currently registered with the event loop");
  return g;
}

timespec to_timespec(std::chrono::steady_clock::time_point tp) {
  // steady_clock is CLOCK_MONOTONIC on Linux, which is what the timerfd
  // was created against — the epochs match.
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      tp.time_since_epoch())
                      .count();
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(ns / 1000000000);
  ts.tv_nsec = static_cast<long>(ns % 1000000000);
  return ts;
}

}  // namespace

EventLoop::EventLoop()
    : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)),
      timer_fd_(::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK)) {
  if (epoll_fd_.valid()) {
    if (wake_fd_.valid()) update_epoll(wake_fd_.fd(), EPOLLIN, EPOLL_CTL_ADD);
    if (timer_fd_.valid()) update_epoll(timer_fd_.fd(), EPOLLIN, EPOLL_CTL_ADD);
  }
}

EventLoop::~EventLoop() { stop(); }

bool EventLoop::start(std::string* error) {
  if (!epoll_fd_.valid() || !wake_fd_.valid() || !timer_fd_.valid()) {
    if (error != nullptr) *error = "event loop descriptors unavailable";
    return false;
  }
  loop_thread_ = std::thread([this] { run(); });
  return true;
}

void EventLoop::stop() {
  if (stopped_.exchange(true)) return;
  if (loop_thread_.joinable()) {
    stopping_.store(true);
    const uint64_t one = 1;
    [[maybe_unused]] const long n = ::write(wake_fd_.fd(), &one, sizeof one);
    loop_thread_.join();
  } else {
    close_all_connections();
    remove_listeners();
  }
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.clear();
  }
}

void EventLoop::add_listener(SocketFd listener,
                             std::function<void(SocketFd)> on_accept) {
  std::string ignored;
  set_nonblocking(listener.fd(), &ignored);
  auto entry = std::make_unique<Listener>();
  entry->fd = std::move(listener);
  entry->on_accept = std::move(on_accept);
  update_epoll(entry->fd.fd(), EPOLLIN, EPOLL_CTL_ADD);
  listeners_.push_back(std::move(entry));
}

void EventLoop::remove_listeners() {
  for (auto& l : listeners_) {
    update_epoll(l->fd.fd(), 0, EPOLL_CTL_DEL);
    l->fd.close_fd();
  }
  listeners_.clear();
}

Connection* EventLoop::adopt(SocketFd socket) {
  std::string ignored;
  set_nonblocking(socket.fd(), &ignored);
  const int fd = socket.fd();
  static std::atomic<uint64_t> next_conn_id{1};
  auto conn = std::make_unique<Connection>(
      this, std::move(socket), next_conn_id.fetch_add(1));
  Connection* raw = conn.get();
  connections_.emplace(fd, std::move(conn));
  update_epoll(fd, EPOLLIN, EPOLL_CTL_ADD);
  open_connections_.fetch_add(1, std::memory_order_relaxed);
  open_gauge().add();
  return raw;
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (stopped_.load()) return;  // late replies after teardown: dropped
    posted_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  [[maybe_unused]] const long n = ::write(wake_fd_.fd(), &one, sizeof one);
}

void EventLoop::run_sync(const std::function<void()>& fn) {
  if (on_loop_thread()) {
    fn();
    return;
  }
  std::promise<void> done;
  std::future<void> fut = done.get_future();
  post([&fn, &done] {
    fn();
    done.set_value();
  });
  fut.wait();
}

TimerId EventLoop::add_timer(std::chrono::steady_clock::time_point deadline,
                             std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timer_fns_.emplace(id, std::move(fn));
  timers_.push(Timer{deadline, id});
  if (timers_.top().id == id) rearm_timerfd();
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timer_fns_.erase(id); }

void EventLoop::run() {
  loop_thread_id_.store(std::this_thread::get_id());
  epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_.fd(), events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed: unrecoverable
    }
    wakeups_metric().inc();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_.fd()) {
        uint64_t drained = 0;
        [[maybe_unused]] const long r =
            ::read(wake_fd_.fd(), &drained, sizeof drained);
        drain_posted();
        continue;
      }
      if (fd == timer_fd_.fd()) {
        uint64_t expirations = 0;
        [[maybe_unused]] const long r =
            ::read(timer_fd_.fd(), &expirations, sizeof expirations);
        fire_due_timers();
        continue;
      }
      bool was_listener = false;
      for (auto& l : listeners_) {
        if (l->fd.fd() == fd) {
          handle_accept(*l);
          was_listener = true;
          break;
        }
      }
      if (was_listener) continue;
      // Per-event re-lookup: an earlier event in this batch may have
      // destroyed the connection (or a new one reused the fd — the map
      // then holds the *new* connection, whose events these now are).
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) it->second->handle_readable();
      it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if (ev & EPOLLOUT) it->second->handle_writable();
    }
    graveyard_.clear();
    if (stopping_.load()) {
      drain_posted();  // replies posted before stop() still deliver
      break;
    }
  }
  remove_listeners();
  close_all_connections();
  graveyard_.clear();
}

void EventLoop::handle_accept(Listener& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    accepts_metric().inc();
    listener.on_accept(SocketFd(fd));
  }
}

void EventLoop::drain_posted() {
  // Closures may post more work; loop until the queue is observed empty
  // so a post-from-post still runs before epoll_wait sleeps.
  for (;;) {
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (posted_.empty()) return;
      batch.swap(posted_);
    }
    for (auto& fn : batch) fn();
    graveyard_.clear();
  }
}

void EventLoop::fire_due_timers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.top().when <= now) {
    const TimerId id = timers_.top().id;
    timers_.pop();
    auto it = timer_fns_.find(id);
    if (it == timer_fns_.end()) continue;  // lazily cancelled
    std::function<void()> fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
  graveyard_.clear();
  rearm_timerfd();
}

void EventLoop::rearm_timerfd() {
  itimerspec spec{};  // all-zero disarms
  if (!timers_.empty()) {
    spec.it_value = to_timespec(timers_.top().when);
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0)
      spec.it_value.tv_nsec = 1;  // "now" must not read as "disarm"
  }
  ::timerfd_settime(timer_fd_.fd(), TFD_TIMER_ABSTIME, &spec, nullptr);
}

void EventLoop::update_epoll(int fd, uint32_t events, int op) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_.fd(), op, fd, op == EPOLL_CTL_DEL ? nullptr : &ev);
}

void EventLoop::destroy_connection(Connection* conn) {
  auto it = connections_.find(conn->fd());
  if (it == connections_.end() || it->second.get() != conn) return;
  update_epoll(conn->fd(), 0, EPOLL_CTL_DEL);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  open_gauge().sub();
  graveyard_.push_back(std::move(it->second));
  connections_.erase(it);
}

void EventLoop::close_all_connections() {
  while (!connections_.empty()) connections_.begin()->second->close();
  graveyard_.clear();
}

}  // namespace dsp
