// Dense row-major matrix of doubles with the handful of BLAS-like kernels
// the GCN training loop needs. The matmuls are cache-tiled and 4-way
// unrolled: solo Extract works on (num_nodes x 7) features where this
// barely matters, but batched Extract vstacks every claimed job's feature
// matrix into one tall operand, and the training loop's gradient products
// (matmul_transposed_lhs) touch the full stack each epoch. The blocked
// kernels keep each output element's accumulation order (ascending k) and
// the zero-operand skips identical to the naive triple loop, so results
// stay bit-exact with the pre-blocking implementation.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dsp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {}

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }

  /// Glorot/Xavier-uniform initialization (the PyTorch-Geometric default
  /// for GCN weights, which the paper's model uses).
  static Matrix glorot(int rows, int cols, Rng& rng);

  /// Row-stack of equal-width matrices (the dense half of a block-diagonal
  /// batch: CsrMatrix::block_diagonal on the adjacencies, vstack on the
  /// feature matrices).
  static Matrix vstack(const std::vector<const Matrix*>& parts);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& at(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* row(int r) const { return data_.data() + static_cast<size_t>(r) * cols_; }

  Matrix matmul(const Matrix& other) const;           // this (r x k) * other (k x c)
  Matrix matmul_transposed_lhs(const Matrix& other) const;  // this^T * other
  Matrix matmul_transposed_rhs(const Matrix& other) const;  // this * other^T
  Matrix transposed() const;

  void add_in_place(const Matrix& other, double scale = 1.0);
  void scale_in_place(double s);
  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Adds a row vector (1 x cols) to every row (bias broadcast).
  void add_row_broadcast(const Matrix& bias);

  double frobenius_norm() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dsp
