#include "nn/svm.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dsp {

void LinearSvm::fit(const Matrix& x, const std::vector<int>& y,
                    const std::vector<char>& mask) {
  const int d = x.cols();
  std::vector<int> rows;
  for (int i = 0; i < x.rows(); ++i)
    if (mask[static_cast<size_t>(i)]) rows.push_back(i);
  if (rows.empty()) return;

  // Standardize on training rows.
  mean_.assign(static_cast<size_t>(d), 0.0);
  stddev_.assign(static_cast<size_t>(d), 1.0);
  for (int i : rows)
    for (int j = 0; j < d; ++j) mean_[static_cast<size_t>(j)] += x.at(i, j);
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (int i : rows)
    for (int j = 0; j < d; ++j) {
      const double delta = x.at(i, j) - mean_[static_cast<size_t>(j)];
      stddev_[static_cast<size_t>(j)] += delta * delta;
    }
  for (double& s : stddev_) s = std::sqrt(s / static_cast<double>(rows.size())) + 1e-9;

  // Per-class weights (minority boosted).
  double pos = 0;
  for (int i : rows) pos += y[static_cast<size_t>(i)] == 1 ? 1.0 : 0.0;
  const double neg = static_cast<double>(rows.size()) - pos;
  const double w_pos = pos > 0 ? static_cast<double>(rows.size()) / (2.0 * pos) : 1.0;
  const double w_neg = neg > 0 ? static_cast<double>(rows.size()) / (2.0 * neg) : 1.0;

  w_.assign(static_cast<size_t>(d), 0.0);
  b_ = 0.0;
  Rng rng(cfg_.seed);
  long t = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(rows);
    for (int i : rows) {
      ++t;
      const double eta = 1.0 / (cfg_.lambda * static_cast<double>(t));
      const double target = y[static_cast<size_t>(i)] == 1 ? 1.0 : -1.0;
      const double cw = (target > 0 ? w_pos : w_neg) * cfg_.class_balance;
      double score = b_;
      for (int j = 0; j < d; ++j)
        score += w_[static_cast<size_t>(j)] *
                 ((x.at(i, j) - mean_[static_cast<size_t>(j)]) / stddev_[static_cast<size_t>(j)]);
      // Pegasos update: shrink + (hinge-active) gradient step.
      for (double& wj : w_) wj *= (1.0 - eta * cfg_.lambda);
      if (target * score < 1.0) {
        for (int j = 0; j < d; ++j)
          w_[static_cast<size_t>(j)] +=
              eta * cw * target *
              ((x.at(i, j) - mean_[static_cast<size_t>(j)]) / stddev_[static_cast<size_t>(j)]);
        b_ += eta * cw * target;
      }
    }
  }
}

double LinearSvm::decision(const Matrix& x, int row) const {
  if (w_.empty()) return 0.0;
  double score = b_;
  for (int j = 0; j < x.cols(); ++j)
    score += w_[static_cast<size_t>(j)] *
             ((x.at(row, j) - mean_[static_cast<size_t>(j)]) / stddev_[static_cast<size_t>(j)]);
  return score;
}

std::vector<int> LinearSvm::predict(const Matrix& x) const {
  std::vector<int> out(static_cast<size_t>(x.rows()), 0);
  for (int i = 0; i < x.rows(); ++i) out[static_cast<size_t>(i)] = decision(x, i) >= 0 ? 1 : 0;
  return out;
}

double LinearSvm::accuracy(const Matrix& x, const std::vector<int>& y,
                           const std::vector<char>& mask) const {
  int correct = 0, count = 0;
  const auto pred = predict(x);
  for (int i = 0; i < x.rows(); ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    if (pred[static_cast<size_t>(i)] == y[static_cast<size_t>(i)]) ++correct;
    ++count;
  }
  return count > 0 ? static_cast<double>(correct) / count : 0.0;
}

}  // namespace dsp
