#include "nn/optimizer.hpp"

#include <cmath>

namespace dsp {

void Adam::attach(Param* p) {
  State s{p, Matrix(p->value.rows(), p->value.cols()), Matrix(p->value.rows(), p->value.cols())};
  states_.push_back(std::move(s));
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  for (auto& s : states_) {
    Matrix& w = s.param->value;
    Matrix& g = s.param->grad;
    for (int i = 0; i < w.rows(); ++i) {
      for (int j = 0; j < w.cols(); ++j) {
        const double grad = g.at(i, j);
        double& m = s.m.at(i, j);
        double& v = s.v.at(i, j);
        m = cfg_.beta1 * m + (1.0 - cfg_.beta1) * grad;
        v = cfg_.beta2 * v + (1.0 - cfg_.beta2) * grad * grad;
        const double mhat = m / bc1;
        const double vhat = v / bc2;
        w.at(i, j) -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                                 cfg_.weight_decay * w.at(i, j));
      }
    }
    s.param->zero_grad();
  }
}

}  // namespace dsp
