#include "nn/layers.hpp"

#include <cassert>
#include <cmath>

namespace dsp {

DenseLayer::DenseLayer(int in_dim, int out_dim, Rng& rng)
    : w_(Matrix::glorot(in_dim, out_dim, rng)), b_(Matrix(1, out_dim)) {}

Matrix DenseLayer::forward(const Matrix& x) {
  last_input_ = x;
  Matrix y = x.matmul(w_.value);
  y.add_row_broadcast(b_.value);
  return y;
}

Matrix DenseLayer::backward(const Matrix& dy) {
  w_.grad.add_in_place(last_input_.matmul_transposed_lhs(dy));
  for (int i = 0; i < dy.rows(); ++i)
    for (int j = 0; j < dy.cols(); ++j) b_.grad.at(0, j) += dy.at(i, j);
  return dy.matmul_transposed_rhs(w_.value);
}

GcnLayer::GcnLayer(int in_dim, int out_dim, Rng& rng)
    : w_(Matrix::glorot(in_dim, out_dim, rng)), b_(Matrix(1, out_dim)) {}

Matrix GcnLayer::forward(const CsrMatrix& adj_norm, const Matrix& x) {
  last_agg_ = adj_norm.spmm(x);
  Matrix y = last_agg_.matmul(w_.value);
  y.add_row_broadcast(b_.value);
  return y;
}

Matrix GcnLayer::backward(const CsrMatrix& adj_norm, const Matrix& dy) {
  // Y = (ÂX)W + b. dW = (ÂX)^T dY; dX = Â^T (dY W^T) = Â (dY W^T), Â symm.
  w_.grad.add_in_place(last_agg_.matmul_transposed_lhs(dy));
  for (int i = 0; i < dy.rows(); ++i)
    for (int j = 0; j < dy.cols(); ++j) b_.grad.at(0, j) += dy.at(i, j);
  return adj_norm.spmm(dy.matmul_transposed_rhs(w_.value));
}

Matrix ReluLayer::forward(const Matrix& x) {
  cols_ = x.cols();
  mask_.assign(x.size(), 0);
  Matrix y = x;
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      const size_t k = static_cast<size_t>(i) * cols_ + j;
      if (x.at(i, j) > 0) {
        mask_[k] = 1;
      } else {
        y.at(i, j) = 0.0;
      }
    }
  }
  return y;
}

Matrix ReluLayer::backward(const Matrix& dy) const {
  Matrix dx = dy;
  for (int i = 0; i < dy.rows(); ++i)
    for (int j = 0; j < dy.cols(); ++j)
      if (!mask_[static_cast<size_t>(i) * cols_ + j]) dx.at(i, j) = 0.0;
  return dx;
}

Matrix DropoutLayer::forward(const Matrix& x, bool training, Rng& rng) {
  cols_ = x.cols();
  if (!training || p_ <= 0.0) {
    mask_.assign(x.size(), 1.0);
    return x;
  }
  const double keep = 1.0 - p_;
  mask_.assign(x.size(), 0.0);
  Matrix y = x;
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      const size_t k = static_cast<size_t>(i) * cols_ + j;
      if (rng.uniform() < keep) {
        mask_[k] = 1.0 / keep;
        y.at(i, j) *= mask_[k];
      } else {
        y.at(i, j) = 0.0;
      }
    }
  }
  return y;
}

Matrix DropoutLayer::backward(const Matrix& dy) const {
  Matrix dx = dy;
  for (int i = 0; i < dy.rows(); ++i)
    for (int j = 0; j < dy.cols(); ++j)
      dx.at(i, j) *= mask_[static_cast<size_t>(i) * cols_ + j];
  return dx;
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix p = logits;
  for (int i = 0; i < p.rows(); ++i) {
    double mx = p.at(i, 0);
    for (int j = 1; j < p.cols(); ++j) mx = std::max(mx, p.at(i, j));
    double sum = 0.0;
    for (int j = 0; j < p.cols(); ++j) {
      p.at(i, j) = std::exp(p.at(i, j) - mx);
      sum += p.at(i, j);
    }
    for (int j = 0; j < p.cols(); ++j) p.at(i, j) /= sum;
  }
  return p;
}

double weighted_cross_entropy(const Matrix& logits, const std::vector<int>& labels,
                              const std::vector<char>& mask,
                              const std::vector<double>& class_weight, Matrix* dlogits) {
  assert(static_cast<int>(labels.size()) == logits.rows());
  assert(static_cast<int>(mask.size()) == logits.rows());
  const Matrix p = softmax_rows(logits);
  if (dlogits != nullptr) *dlogits = Matrix(logits.rows(), logits.cols());

  double loss = 0.0;
  double weight_sum = 0.0;
  for (int i = 0; i < logits.rows(); ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    const int y = labels[static_cast<size_t>(i)];
    assert(y >= 0 && y < logits.cols());
    weight_sum += class_weight[static_cast<size_t>(y)];
  }
  if (weight_sum <= 0) return 0.0;

  for (int i = 0; i < logits.rows(); ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    const int y = labels[static_cast<size_t>(i)];
    const double w = class_weight[static_cast<size_t>(y)] / weight_sum;
    loss -= w * std::log(std::max(p.at(i, y), 1e-12));
    if (dlogits != nullptr) {
      for (int j = 0; j < logits.cols(); ++j) {
        const double indicator = (j == y) ? 1.0 : 0.0;
        dlogits->at(i, j) = w * (p.at(i, j) - indicator);
      }
    }
  }
  return loss;
}

}  // namespace dsp
