#include "nn/matrix.hpp"

#include <cmath>

namespace dsp {

Matrix Matrix::glorot(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (size_t i = 0; i < m.data_.size(); ++i) m.data_[i] = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::vstack(const std::vector<const Matrix*>& parts) {
  int rows = 0;
  int cols = 0;
  for (const Matrix* p : parts) {
    assert(cols == 0 || p->cols() == cols);
    cols = p->cols();
    rows += p->rows();
  }
  Matrix out(rows, cols);
  int at = 0;
  for (const Matrix* p : parts) {
    for (int r = 0; r < p->rows(); ++r) {
      const double* src = p->row(r);
      double* dst = out.row(at + r);
      for (int j = 0; j < cols; ++j) dst[j] = src[j];
    }
    at += p->rows();
  }
  return out;
}

Matrix Matrix::matmul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    const double* a = row(i);
    double* o = out.row(i);
    for (int k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = other.row(k);
      for (int j = 0; j < other.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed_lhs(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (int k = 0; k < rows_; ++k) {
    const double* a = row(k);
    const double* b = other.row(k);
    for (int i = 0; i < cols_; ++i) {
      const double aki = a[i];
      if (aki == 0.0) continue;
      double* o = out.row(i);
      for (int j = 0; j < other.cols_; ++j) o[j] += aki * b[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed_rhs(const Matrix& other) const {
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* a = row(i);
    double* o = out.row(i);
    for (int j = 0; j < other.rows_; ++j) {
      const double* b = other.row(j);
      double s = 0.0;
      for (int k = 0; k < cols_; ++k) s += a[k] * b[k];
      o[j] = s;
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

void Matrix::add_in_place(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::scale_in_place(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::add_row_broadcast(const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == cols_);
  for (int i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (int j = 0; j < cols_; ++j) r[j] += bias.at(0, j);
  }
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

}  // namespace dsp
