#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace dsp {
namespace {
// Output columns processed per pass: the active slices of `out` and up to
// four rows of the RHS (5 * 512 doubles = 20 KiB) stay resident in L1/L2
// while the unrolled k-loop streams over them.
constexpr int kJTile = 512;
}  // namespace

Matrix Matrix::glorot(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / (rows + cols));
  for (size_t i = 0; i < m.data_.size(); ++i) m.data_[i] = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::vstack(const std::vector<const Matrix*>& parts) {
  int rows = 0;
  int cols = 0;
  for (const Matrix* p : parts) {
    assert(cols == 0 || p->cols() == cols);
    cols = p->cols();
    rows += p->rows();
  }
  Matrix out(rows, cols);
  int at = 0;
  for (const Matrix* p : parts) {
    for (int r = 0; r < p->rows(); ++r) {
      const double* src = p->row(r);
      double* dst = out.row(at + r);
      for (int j = 0; j < cols; ++j) dst[j] = src[j];
    }
    at += p->rows();
  }
  return out;
}

// All three kernels accumulate each output element strictly in ascending-k
// order (the nested (((o + a0*b0) + a1*b1) + ...) chains are the same
// add/mul sequence the rolled loop emits), and the sparsity skips fire for
// exactly the same operands, so blocking/unrolling never changes a bit of
// the result — the GCN weight pool and checkpoint keys rely on that.

Matrix Matrix::matmul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  const int n = other.cols_;
  Matrix out(rows_, n);
  for (int i = 0; i < rows_; ++i) {
    const double* a = row(i);
    double* o = out.row(i);
    for (int j0 = 0; j0 < n; j0 += kJTile) {
      const int j1 = std::min(n, j0 + kJTile);
      int k = 0;
      for (; k + 4 <= cols_; k += 4) {
        const double a0 = a[k], a1 = a[k + 1], a2 = a[k + 2], a3 = a[k + 3];
        const double* b0 = other.row(k);
        const double* b1 = other.row(k + 1);
        const double* b2 = other.row(k + 2);
        const double* b3 = other.row(k + 3);
        if (a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0) {
          for (int j = j0; j < j1; ++j)
            o[j] = (((o[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        } else {
          // ReLU activations and one-hot features make zero a-operands
          // common; keep the rolled loop's per-k skip for them.
          if (a0 != 0.0)
            for (int j = j0; j < j1; ++j) o[j] += a0 * b0[j];
          if (a1 != 0.0)
            for (int j = j0; j < j1; ++j) o[j] += a1 * b1[j];
          if (a2 != 0.0)
            for (int j = j0; j < j1; ++j) o[j] += a2 * b2[j];
          if (a3 != 0.0)
            for (int j = j0; j < j1; ++j) o[j] += a3 * b3[j];
        }
      }
      for (; k < cols_; ++k) {
        const double aik = a[k];
        if (aik == 0.0) continue;
        const double* b = other.row(k);
        for (int j = j0; j < j1; ++j) o[j] += aik * b[j];
      }
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed_lhs(const Matrix& other) const {
  assert(rows_ == other.rows_);
  const int n = other.cols_;
  Matrix out(cols_, n);
  // Register-block four LHS rows per pass: their RHS rows b0..b3 are reused
  // across every output row i of the pass instead of being re-streamed.
  int k = 0;
  for (; k + 4 <= rows_; k += 4) {
    const double* a0 = row(k);
    const double* a1 = row(k + 1);
    const double* a2 = row(k + 2);
    const double* a3 = row(k + 3);
    const double* b0 = other.row(k);
    const double* b1 = other.row(k + 1);
    const double* b2 = other.row(k + 2);
    const double* b3 = other.row(k + 3);
    for (int i = 0; i < cols_; ++i) {
      const double c0 = a0[i], c1 = a1[i], c2 = a2[i], c3 = a3[i];
      double* o = out.row(i);
      if (c0 != 0.0 && c1 != 0.0 && c2 != 0.0 && c3 != 0.0) {
        for (int j = 0; j < n; ++j)
          o[j] = (((o[j] + c0 * b0[j]) + c1 * b1[j]) + c2 * b2[j]) + c3 * b3[j];
      } else {
        if (c0 != 0.0)
          for (int j = 0; j < n; ++j) o[j] += c0 * b0[j];
        if (c1 != 0.0)
          for (int j = 0; j < n; ++j) o[j] += c1 * b1[j];
        if (c2 != 0.0)
          for (int j = 0; j < n; ++j) o[j] += c2 * b2[j];
        if (c3 != 0.0)
          for (int j = 0; j < n; ++j) o[j] += c3 * b3[j];
      }
    }
  }
  for (; k < rows_; ++k) {
    const double* a = row(k);
    const double* b = other.row(k);
    for (int i = 0; i < cols_; ++i) {
      const double aki = a[i];
      if (aki == 0.0) continue;
      double* o = out.row(i);
      for (int j = 0; j < n; ++j) o[j] += aki * b[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed_rhs(const Matrix& other) const {
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* a = row(i);
    double* o = out.row(i);
    for (int j = 0; j < other.rows_; ++j) {
      const double* b = other.row(j);
      // Single sequential accumulator: splitting into partial sums would
      // reassociate the adds and break bit-exactness with the rolled loop.
      double s = 0.0;
      int k = 0;
      for (; k + 4 <= cols_; k += 4)
        s = (((s + a[k] * b[k]) + a[k + 1] * b[k + 1]) + a[k + 2] * b[k + 2]) +
            a[k + 3] * b[k + 3];
      for (; k < cols_; ++k) s += a[k] * b[k];
      o[j] = s;
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

void Matrix::add_in_place(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::scale_in_place(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::add_row_broadcast(const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == cols_);
  for (int i = 0; i < rows_; ++i) {
    double* r = row(i);
    for (int j = 0; j < cols_; ++j) r[j] += bias.at(0, j);
  }
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

}  // namespace dsp
