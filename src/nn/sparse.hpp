// CSR sparse matrix for the GCN propagation operator.
//
// The GCN layer computes H' = Â H W with Â = D^{-1/2}(A + I)D^{-1/2}
// (Kipf-Welling symmetric normalization, the formulation the paper's
// PyTorch-Geometric model uses). Â is symmetric, so the backward pass can
// reuse the same spmm.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/digraph.hpp"
#include "nn/matrix.hpp"

namespace dsp {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// From (row, col, value) triplets; duplicates are summed.
  static CsrMatrix from_triplets(int rows, int cols,
                                 std::vector<std::tuple<int, int, double>> triplets);

  /// Kipf-Welling normalized adjacency of `g` treated as undirected, with
  /// self-loops added: D^{-1/2} (A + I) D^{-1/2}. The CsrGraph overload is
  /// the hot path (degrees and neighborhoods read straight off the frozen
  /// undirected adjacency, no per-node allocation); the Digraph overload
  /// freezes internally and produces a bit-identical matrix.
  static CsrMatrix normalized_adjacency(const Digraph& g);
  static CsrMatrix normalized_adjacency(const CsrGraph& g);

  /// Block-diagonal union of several matrices: rows/cols concatenate, every
  /// block keeps its exact values. Because spmm computes each output row
  /// from that row's nonzeros alone, one forward pass over a block-diagonal
  /// batch is bit-identical per block to separate forwards — the basis of
  /// the scheduler's batched GCN inference (Matrix::vstack stacks the
  /// matching dense operands).
  static CsrMatrix block_diagonal(const std::vector<const CsrMatrix*>& blocks);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// out = this * dense  (rows x dense.cols()).
  Matrix spmm(const Matrix& dense) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace dsp
