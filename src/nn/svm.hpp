// Linear SVM trained with Pegasos-style SGD on the hinge loss.
//
// This reproduces the PADE baseline of the paper's Fig. 7(a): an SVM over
// *local* automorphism-style features, which the GCN's global centrality
// features outperform by ~15 accuracy points. Features are standardized
// internally (zero mean, unit variance on the training set).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.hpp"

namespace dsp {

struct SvmConfig {
  double lambda = 1e-3;  // L2 regularization strength
  int epochs = 60;
  uint64_t seed = 7;
  double class_balance = 1.0;  // >1 boosts minority-class updates
};

class LinearSvm {
 public:
  explicit LinearSvm(SvmConfig cfg = {}) : cfg_(cfg) {}

  /// X: one row per sample; y: 0/1 labels. Rows where mask is false are
  /// ignored.
  void fit(const Matrix& x, const std::vector<int>& y, const std::vector<char>& mask);

  /// Predicted 0/1 labels for every row of X.
  std::vector<int> predict(const Matrix& x) const;

  /// Signed decision value for one row.
  double decision(const Matrix& x, int row) const;

  double accuracy(const Matrix& x, const std::vector<int>& y,
                  const std::vector<char>& mask) const;

 private:
  SvmConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace dsp
