#include "nn/gcn.hpp"

#include <cassert>

#include "util/log.hpp"

namespace dsp {

GcnClassifier::GcnClassifier(int in_dim, GcnConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      gcn1_(in_dim, cfg.hidden, rng_),
      gcn2_(cfg.hidden, cfg.hidden, rng_),
      fc1_(cfg.hidden, cfg.fc_hidden, rng_),
      fc2_(cfg.fc_hidden, cfg.fc_hidden / 2, rng_),
      fc3_(cfg.fc_hidden / 2, cfg.num_classes, rng_),
      drop1_(cfg.dropout),
      drop2_(cfg.dropout),
      opt_(AdamConfig{cfg.lr, 0.9, 0.999, 1e-8, cfg.weight_decay}) {
  opt_.attach(&gcn1_.weight());
  opt_.attach(&gcn1_.bias());
  opt_.attach(&gcn2_.weight());
  opt_.attach(&gcn2_.bias());
  opt_.attach(&fc1_.weight());
  opt_.attach(&fc1_.bias());
  opt_.attach(&fc2_.weight());
  opt_.attach(&fc2_.bias());
  opt_.attach(&fc3_.weight());
  opt_.attach(&fc3_.bias());
}

Matrix GcnClassifier::forward(const CsrMatrix& adj_norm, const Matrix& features,
                              bool training) {
  Matrix h = relu_g1_.forward(gcn1_.forward(adj_norm, features));
  h = drop1_.forward(h, training, rng_);
  h = relu_g2_.forward(gcn2_.forward(adj_norm, h));
  h = drop2_.forward(h, training, rng_);
  h = relu_f1_.forward(fc1_.forward(h));
  h = relu_f2_.forward(fc2_.forward(h));
  return fc3_.forward(h);
}

void GcnClassifier::backward(const CsrMatrix& adj_norm, const Matrix& dlogits) {
  Matrix d = fc3_.backward(dlogits);
  d = relu_f2_.backward(d);
  d = fc2_.backward(d);
  d = relu_f1_.backward(d);
  d = fc1_.backward(d);
  d = drop2_.backward(d);
  d = relu_g2_.backward(d);
  d = gcn2_.backward(adj_norm, d);
  d = drop1_.backward(d);
  d = relu_g1_.backward(d);
  (void)gcn1_.backward(adj_norm, d);
}

std::vector<EpochMetrics> GcnClassifier::fit(const CsrMatrix& adj_norm,
                                             const Matrix& features,
                                             const std::vector<int>& labels,
                                             const std::vector<char>& train_mask,
                                             const std::vector<char>& test_mask) {
  // Inverse-frequency class weights from the training rows.
  std::vector<double> class_count(static_cast<size_t>(cfg_.num_classes), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < train_mask.size(); ++i) {
    if (train_mask[i]) {
      class_count[static_cast<size_t>(labels[i])] += 1.0;
      total += 1.0;
    }
  }
  std::vector<double> class_weight(static_cast<size_t>(cfg_.num_classes), 1.0);
  for (int k = 0; k < cfg_.num_classes; ++k) {
    const double cnt = class_count[static_cast<size_t>(k)];
    class_weight[static_cast<size_t>(k)] =
        cnt > 0 ? total / (cfg_.num_classes * cnt) : 0.0;
  }

  std::vector<EpochMetrics> curve;
  curve.reserve(static_cast<size_t>(cfg_.epochs));
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    Matrix logits = forward(adj_norm, features, /*training=*/true);
    Matrix dlogits;
    const double loss =
        weighted_cross_entropy(logits, labels, train_mask, class_weight, &dlogits);
    backward(adj_norm, dlogits);
    opt_.step();

    EpochMetrics m;
    m.epoch = epoch;
    m.loss = loss;
    // Evaluation pass without dropout.
    const Matrix eval_logits = forward(adj_norm, features, /*training=*/false);
    m.train_accuracy = accuracy(eval_logits, labels, train_mask);
    m.test_accuracy = accuracy(eval_logits, labels, test_mask);
    curve.push_back(m);
    if (epoch % 50 == 0)
      LOG_DEBUG("gcn", "epoch %d loss %.4f train %.3f test %.3f", epoch, loss,
                m.train_accuracy, m.test_accuracy);
  }
  return curve;
}

std::vector<int> GcnClassifier::predict(const CsrMatrix& adj_norm, const Matrix& features) {
  const Matrix logits = forward(adj_norm, features, /*training=*/false);
  std::vector<int> out(static_cast<size_t>(logits.rows()), 0);
  for (int i = 0; i < logits.rows(); ++i) {
    int best = 0;
    for (int j = 1; j < logits.cols(); ++j)
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double GcnClassifier::accuracy(const Matrix& logits, const std::vector<int>& labels,
                               const std::vector<char>& mask) {
  int correct = 0;
  int count = 0;
  for (int i = 0; i < logits.rows(); ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    int best = 0;
    for (int j = 1; j < logits.cols(); ++j)
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    if (best == labels[static_cast<size_t>(i)]) ++correct;
    ++count;
  }
  return count > 0 ? static_cast<double>(correct) / count : 0.0;
}

}  // namespace dsp
