// Adam optimizer over a set of Param tensors.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace dsp {

struct AdamConfig {
  double lr = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style)
};

class Adam {
 public:
  explicit Adam(AdamConfig cfg = {}) : cfg_(cfg) {}

  /// Registers a parameter tensor; must be called before the first step.
  void attach(Param* p);

  /// Applies one update from the accumulated gradients, then clears them.
  void step();

  const AdamConfig& config() const { return cfg_; }

 private:
  struct State {
    Param* param;
    Matrix m;
    Matrix v;
  };
  AdamConfig cfg_;
  std::vector<State> states_;
  long t_ = 0;
};

}  // namespace dsp
