// The paper's datapath-DSP classifier (Fig. 3(c)): two graph-convolution
// layers with 32 hidden units, followed by three fully-connected layers and
// softmax, trained with dropout and a class-weighted cross-entropy loss.
// Node classification runs over the whole netlist graph; the loss and the
// accuracy metrics are masked to DSP nodes (the only labeled class).
#pragma once

#include <vector>

#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/sparse.hpp"

namespace dsp {

struct GcnConfig {
  int hidden = 32;       // units per GCN layer (paper: 32)
  int fc_hidden = 32;    // width of the first two FC layers
  int num_classes = 2;   // datapath vs control
  double dropout = 0.3;
  double lr = 1e-2;
  double weight_decay = 5e-4;
  int epochs = 300;      // paper's accuracy curve spans 300 epochs
  uint64_t seed = 1;
};

struct EpochMetrics {
  int epoch = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

class GcnClassifier {
 public:
  GcnClassifier(int in_dim, GcnConfig cfg);

  /// Full-batch forward over all nodes. Returns logits (n x num_classes).
  Matrix forward(const CsrMatrix& adj_norm, const Matrix& features, bool training);

  /// Trains on `train_mask` rows; `test_mask` rows are evaluated per epoch
  /// (never trained on). Class weights are derived from the inverse class
  /// frequency of the training rows, the paper's imbalance remedy.
  /// Returns the per-epoch curve (paper Fig. 7(b)).
  std::vector<EpochMetrics> fit(const CsrMatrix& adj_norm, const Matrix& features,
                                const std::vector<int>& labels,
                                const std::vector<char>& train_mask,
                                const std::vector<char>& test_mask);

  /// Argmax class per node (eval mode, no dropout).
  std::vector<int> predict(const CsrMatrix& adj_norm, const Matrix& features);

  /// Fraction of `mask` rows whose argmax equals the label.
  static double accuracy(const Matrix& logits, const std::vector<int>& labels,
                         const std::vector<char>& mask);

  const GcnConfig& config() const { return cfg_; }

 private:
  void backward(const CsrMatrix& adj_norm, const Matrix& dlogits);

  GcnConfig cfg_;
  Rng rng_;
  GcnLayer gcn1_;
  GcnLayer gcn2_;
  DenseLayer fc1_;
  DenseLayer fc2_;
  DenseLayer fc3_;
  ReluLayer relu_g1_, relu_g2_, relu_f1_, relu_f2_;
  DropoutLayer drop1_, drop2_;
  Adam opt_;
};

}  // namespace dsp
