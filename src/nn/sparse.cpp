#include "nn/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>

namespace dsp {

CsrMatrix CsrMatrix::from_triplets(int rows, int cols,
                                   std::vector<std::tuple<int, int, double>> triplets) {
  std::sort(triplets.begin(), triplets.end(), [](const auto& a, const auto& b) {
    return std::tie(std::get<0>(a), std::get<1>(a)) < std::tie(std::get<0>(b), std::get<1>(b));
  });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    const int r = std::get<0>(triplets[i]);
    const int c = std::get<1>(triplets[i]);
    assert(r >= 0 && r < rows && c >= 0 && c < cols);
    double v = 0.0;
    while (i < triplets.size() && std::get<0>(triplets[i]) == r && std::get<1>(triplets[i]) == c)
      v += std::get<2>(triplets[i++]);
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    ++m.row_ptr_[static_cast<size_t>(r) + 1];
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[static_cast<size_t>(r) + 1] += m.row_ptr_[static_cast<size_t>(r)];
  return m;
}

CsrMatrix CsrMatrix::normalized_adjacency(const Digraph& g) {
  return normalized_adjacency(CsrGraph::freeze(g));
}

CsrMatrix CsrMatrix::normalized_adjacency(const CsrGraph& g) {
  const int n = g.num_nodes();
  // Degree includes the self-loop; read off the precomputed undirected
  // adjacency instead of materializing a neighbor vector per node.
  std::vector<double> deg(static_cast<size_t>(n), 1.0);
  for (int u = 0; u < n; ++u)
    deg[static_cast<size_t>(u)] += static_cast<double>(g.undirected_degree(u));

  std::vector<std::tuple<int, int, double>> trips;
  trips.reserve(static_cast<size_t>(g.num_edges()) * 2 + static_cast<size_t>(n));
  for (int u = 0; u < n; ++u) {
    const double du = 1.0 / std::sqrt(deg[static_cast<size_t>(u)]);
    trips.emplace_back(u, u, du * du);  // self loop
    for (int v : g.undirected(u)) {
      if (v == u) continue;  // explicit self-loop already added above
      const double dv = 1.0 / std::sqrt(deg[static_cast<size_t>(v)]);
      trips.emplace_back(u, v, du * dv);
    }
  }
  return from_triplets(n, n, std::move(trips));
}

CsrMatrix CsrMatrix::block_diagonal(const std::vector<const CsrMatrix*>& blocks) {
  CsrMatrix out;
  out.row_ptr_.push_back(0);
  int col_offset = 0;
  for (const CsrMatrix* b : blocks) {
    for (int r = 0; r < b->rows_; ++r) {
      for (int k = b->row_ptr_[static_cast<size_t>(r)];
           k < b->row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
        out.col_idx_.push_back(col_offset + b->col_idx_[static_cast<size_t>(k)]);
        out.values_.push_back(b->values_[static_cast<size_t>(k)]);
      }
      out.row_ptr_.push_back(static_cast<int>(out.col_idx_.size()));
    }
    out.rows_ += b->rows_;
    out.cols_ += b->cols_;
    col_offset += b->cols_;
  }
  return out;
}

Matrix CsrMatrix::spmm(const Matrix& dense) const {
  assert(cols_ == dense.rows());
  Matrix out(rows_, dense.cols());
  for (int r = 0; r < rows_; ++r) {
    double* o = out.row(r);
    for (int k = row_ptr_[static_cast<size_t>(r)]; k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      const double v = values_[static_cast<size_t>(k)];
      const double* d = dense.row(col_idx_[static_cast<size_t>(k)]);
      for (int j = 0; j < dense.cols(); ++j) o[j] += v * d[j];
    }
  }
  return out;
}

}  // namespace dsp
