// Neural-network building blocks with explicit forward/backward passes.
//
// A tiny, dependency-free stand-in for the PyTorch(-Geometric) stack the
// paper's extraction stage uses: dense (fully-connected) layers, graph
// convolution layers, ReLU, inverted dropout, and a class-weighted softmax
// cross-entropy head (the paper's remedy for datapath/control imbalance).
#pragma once

#include <vector>

#include "nn/matrix.hpp"
#include "nn/sparse.hpp"
#include "util/rng.hpp"

namespace dsp {

/// Parameter tensor plus its gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}
  void zero_grad() { grad.fill(0.0); }
};

/// Fully connected layer: Y = X W + b.
class DenseLayer {
 public:
  DenseLayer(int in_dim, int out_dim, Rng& rng);

  Matrix forward(const Matrix& x);
  /// Returns dL/dX and accumulates dL/dW, dL/db.
  Matrix backward(const Matrix& dy);

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  Param w_;
  Param b_;
  Matrix last_input_;
};

/// Graph convolution: Y = Â X W + b with symmetric normalized Â.
class GcnLayer {
 public:
  GcnLayer(int in_dim, int out_dim, Rng& rng);

  Matrix forward(const CsrMatrix& adj_norm, const Matrix& x);
  Matrix backward(const CsrMatrix& adj_norm, const Matrix& dy);

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  Param w_;
  Param b_;
  Matrix last_agg_;  // Â X, cached for the weight gradient
};

/// ReLU with cached mask.
class ReluLayer {
 public:
  Matrix forward(const Matrix& x);
  Matrix backward(const Matrix& dy) const;

 private:
  std::vector<char> mask_;
  int cols_ = 0;
};

/// Inverted dropout: scales kept units by 1/(1-p) at train time so
/// inference needs no rescaling.
class DropoutLayer {
 public:
  explicit DropoutLayer(double p) : p_(p) {}

  Matrix forward(const Matrix& x, bool training, Rng& rng);
  Matrix backward(const Matrix& dy) const;

 private:
  double p_;
  std::vector<double> mask_;
  int cols_ = 0;
};

/// Row-wise softmax (out-of-place).
Matrix softmax_rows(const Matrix& logits);

/// Class-weighted cross-entropy over the rows selected by `mask`.
/// labels[i] in [0, num_classes); class_weight[k] scales class-k rows.
/// Returns the mean weighted loss and writes dL/dlogits into `dlogits`
/// (zero rows where mask is false).
double weighted_cross_entropy(const Matrix& logits, const std::vector<int>& labels,
                              const std::vector<char>& mask,
                              const std::vector<double>& class_weight, Matrix* dlogits);

}  // namespace dsp
