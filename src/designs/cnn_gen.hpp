// Synthetic CNN-accelerator netlist generator.
//
// Stands in for the post-synthesis DAC-SDC benchmarks (iSmartDNN, SkyNet,
// SkrSkr) the paper evaluates on. The generator reproduces the structural
// properties DSPlacer exploits (paper Fig. 1(b)):
//   * processing units built from PE arrays, each PE a cascade chain of
//     datapath DSPs (DSP48 MACs chained PCOUT->PCIN);
//   * an input dataflow PS -> input BRAM buffers -> distribution LUT trees
//     -> PE chains -> accumulation trees -> output buffer -> PS;
//   * control logic: FSM counters with feedback loops and *control DSPs*
//     (address generators) hub-connected to many FFs and BRAMs — giving
//     them the high betweenness/closeness and storage affinity the paper's
//     classifier keys on;
//   * LUTRAM FIFOs and pipeline-register filler calibrated so total
//     resource counts match the paper's Table I.
// Ground-truth datapath/control roles fall out of construction, playing
// the role of the paper's labeled training data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "netlist/netlist.hpp"

namespace dsp {

struct CnnGenConfig {
  std::string name = "cnn";
  // Resource targets (post-synthesis counts, Table I).
  int total_dsps = 197;
  int control_dsps = 15;
  int chain_len = 9;       // DSPs per PE cascade chain
  int num_bram = 122;
  int num_lutram = 2919;
  int num_lut = 53503;
  int num_ff = 55767;
  double target_freq_mhz = 130.0;
  // Structure knobs.
  int pes_per_pu = 4;      // chains grouped per processing unit
  int tree_fanout = 6;     // distribution / collection tree arity
  uint64_t seed = 2024;
  // Proportional shrink (resource targets scaled by this factor).
  double scale = 1.0;
  // PS port geometry, copied from the target device (fixed cells).
  std::vector<std::pair<double, double>> ps_top_ports;
  std::vector<std::pair<double, double>> ps_right_ports;
};

/// Generates the netlist. Counts match the config targets within the
/// granularity of the structural blocks (a few cells).
Netlist generate_cnn_accelerator(const CnnGenConfig& cfg);

}  // namespace dsp
