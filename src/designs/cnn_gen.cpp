#include "designs/cnn_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace dsp {
namespace {

// Tracks remaining resource budgets; creation helpers decrement them but
// never refuse structural cells (targets are met by sizing the filler).
struct Budget {
  int lut = 0;
  int ff = 0;
  int lutram = 0;

  int take_lut() { return --lut; }
  int take_ff() { return --ff; }
  int take_lutram() { return --lutram; }
};

struct Gen {
  const CnnGenConfig& cfg;
  Netlist nl;
  Rng rng;
  Budget budget;
  int name_counter = 0;

  explicit Gen(const CnnGenConfig& c) : cfg(c), nl(c.name), rng(c.seed) {}

  std::string fresh(const char* prefix) {
    return std::string(prefix) + "_" + std::to_string(name_counter++);
  }

  CellId lut() {
    budget.take_lut();
    return nl.add_cell(fresh("lut"), CellType::kLut);
  }
  CellId ff() {
    budget.take_ff();
    return nl.add_cell(fresh("ff"), CellType::kFlipFlop);
  }
  CellId lutram() {
    budget.take_lutram();
    return nl.add_cell(fresh("lram"), CellType::kLutRam);
  }
  CellId carry() { return nl.add_cell(fresh("carry"), CellType::kCarry); }
  CellId bram() { return nl.add_cell(fresh("bram"), CellType::kBram); }
  CellId dsp_cell(DspRole role) {
    const CellId c = nl.add_cell(fresh("dsp"), CellType::kDsp);
    nl.set_dsp_role(c, role);
    return c;
  }

  NetId wire(CellId driver, std::vector<CellId> sinks) {
    return nl.add_net(fresh("n"), driver, std::move(sinks));
  }
};

// Builds a fanout tree of LUT+pipeline-FF stages from `roots` down to at
// least `num_leaves` leaf drivers; returns exactly num_leaves of them
// (surplus leaves stay as unloaded pipeline registers, which real conv
// engines also have).
std::vector<CellId> build_distribution_tree(Gen& g, const std::vector<CellId>& roots,
                                            int num_leaves, int fanout) {
  std::vector<CellId> level = roots;
  while (static_cast<int>(level.size()) < num_leaves) {
    std::vector<CellId> next;
    next.reserve(level.size() * static_cast<size_t>(fanout));
    for (CellId src : level) {
      std::vector<CellId> sinks;
      for (int k = 0; k < fanout && static_cast<int>(next.size()) <
                                        num_leaves + fanout;
           ++k) {
        const CellId l = g.lut();
        const CellId f = g.ff();
        g.wire(l, {f});
        sinks.push_back(l);
        next.push_back(f);
      }
      if (sinks.empty()) {  // enough leaves already: keep src loaded anyway
        const CellId l = g.lut();
        sinks.push_back(l);
        next.push_back(l);
      }
      g.wire(src, std::move(sinks));
    }
    level = std::move(next);
  }
  level.resize(static_cast<size_t>(num_leaves));
  return level;
}

// Reduction tree from `leaves` up to a single driver.
CellId build_collection_tree(Gen& g, std::vector<CellId> leaves, int fanout) {
  while (leaves.size() > 1) {
    std::vector<CellId> next;
    for (size_t i = 0; i < leaves.size(); i += static_cast<size_t>(fanout)) {
      const CellId sum = g.lut();
      const CellId pipe = g.ff();
      for (size_t k = i; k < std::min(leaves.size(), i + static_cast<size_t>(fanout)); ++k)
        g.wire(leaves[k], {sum});
      g.wire(sum, {pipe});
      next.push_back(pipe);
    }
    leaves = std::move(next);
  }
  return leaves.front();
}

}  // namespace

Netlist generate_cnn_accelerator(const CnnGenConfig& cfg) {
  Gen g(cfg);
  const double s = std::clamp(cfg.scale, 0.02, 1.0);
  auto scaled = [&](int v) { return std::max(1, static_cast<int>(std::lround(v * s))); };

  const int total_dsps = scaled(cfg.total_dsps);
  const int control_dsps = std::max(2, static_cast<int>(std::lround(cfg.control_dsps * s)));
  const int datapath_dsps = std::max(cfg.chain_len, total_dsps - control_dsps);
  const int num_bram = std::max(4, scaled(cfg.num_bram));
  g.budget.lut = scaled(cfg.num_lut);
  g.budget.ff = scaled(cfg.num_ff);
  g.budget.lutram = scaled(cfg.num_lutram);

  // ---- PS ports (fixed cells at the paper's Fig. 5(a) geometry) ----------
  std::vector<CellId> ps_in, ps_out;
  for (size_t i = 0; i < cfg.ps_top_ports.size(); ++i) {
    const CellId c = g.nl.add_cell("ps_in_" + std::to_string(i), CellType::kPsPort);
    g.nl.set_fixed(c, cfg.ps_top_ports[i].first, cfg.ps_top_ports[i].second);
    ps_in.push_back(c);
  }
  for (size_t i = 0; i < cfg.ps_right_ports.size(); ++i) {
    const CellId c = g.nl.add_cell("ps_out_" + std::to_string(i), CellType::kPsPort);
    g.nl.set_fixed(c, cfg.ps_right_ports[i].first, cfg.ps_right_ports[i].second);
    ps_out.push_back(c);
  }
  if (ps_in.empty()) {  // device-less configs still need dataflow anchors
    ps_in.push_back(g.nl.add_cell("ps_in_0", CellType::kPsPort));
    ps_out.push_back(g.nl.add_cell("ps_out_0", CellType::kPsPort));
  }

  // ---- memory partition ----------------------------------------------------
  const int input_brams = std::max(1, num_bram / 4);
  const int output_brams = std::max(1, num_bram / 10);
  const int weight_brams = std::max(1, num_bram - input_brams - output_brams);
  std::vector<CellId> in_bufs, w_bufs, out_bufs;
  for (int i = 0; i < input_brams; ++i) in_bufs.push_back(g.bram());
  for (int i = 0; i < weight_brams; ++i) w_bufs.push_back(g.bram());
  for (int i = 0; i < output_brams; ++i) out_bufs.push_back(g.bram());

  // ---- PS -> input buffers --------------------------------------------------
  // Each PS input port drives a register+LUT front end that fans out to a
  // slice of the input buffers.
  for (size_t p = 0; p < ps_in.size(); ++p) {
    const CellId f = g.ff();
    const CellId l = g.lut();
    g.wire(ps_in[p], {f});
    g.wire(f, {l});
    std::vector<CellId> slice;
    for (size_t b = p; b < in_bufs.size(); b += ps_in.size()) slice.push_back(in_bufs[b]);
    if (slice.empty()) slice.push_back(in_bufs[p % in_bufs.size()]);
    g.wire(l, std::move(slice));
  }

  // ---- control FSM counters (generated early: PEs take enables from them) ----
  std::vector<CellId> counter_bits_forward;
  {
    const int counters = 3;
    for (int k = 0; k < counters; ++k) {
      std::vector<CellId> bits;
      for (int b = 0; b < 8; ++b) {
        const CellId f = g.ff();
        const CellId l = g.lut();
        g.wire(f, {l});
        if (!bits.empty()) g.wire(bits.back(), {l});  // ripple
        bits.push_back(f);
        counter_bits_forward.push_back(f);
        g.wire(l, {f});  // feedback: LUT recomputes the bit
      }
    }
  }

  // ---- PE chains -------------------------------------------------------------
  const int num_chains = (datapath_dsps + cfg.chain_len - 1) / cfg.chain_len;
  std::vector<std::vector<CellId>> chains;
  int remaining = datapath_dsps;
  for (int c = 0; c < num_chains; ++c) {
    const int len = std::min(cfg.chain_len, remaining);
    remaining -= len;
    std::vector<CellId> chain;
    for (int k = 0; k < len; ++k) chain.push_back(g.dsp_cell(DspRole::kDatapath));
    if (chain.size() > 1) g.nl.add_cascade_chain(chain);
    // Cascade nets pred -> succ (the PCOUT->PCIN connection). Most taps are
    // also registered 1-4 times for fanout (P-port pipeline registers), so
    // datapath DSPs drive FF fans just like address generators do — local
    // neighborhoods alone cannot tell the classes apart.
    for (size_t k = 0; k + 1 < chain.size(); ++k) {
      std::vector<CellId> sinks = {chain[k + 1]};
      const int taps = static_cast<int>(g.rng.index(4));
      for (int t = 0; t < taps; ++t) sinks.push_back(g.ff());
      g.wire(chain[k], std::move(sinks));
    }
    // Clock-enable / clear lines from the FSM into the PE: datapath DSPs
    // also see control-fabric inputs, like any real conv engine.
    for (CellId d : chain)
      if (g.rng.uniform() < 0.30 && !counter_bits_forward.empty())
        g.wire(counter_bits_forward[g.rng.index(counter_bits_forward.size())], {d});
    // A slice of the PEs accumulate partial sums in place (stride > 1
    // convolutions): the tail DSP gets an FF feedback loop, so "has a
    // feedback loop" does NOT trivially separate datapath from control.
    if (g.rng.uniform() < 0.18) {
      const CellId acc_ff = g.ff();
      g.wire(chain.back(), {acc_ff});
      g.wire(acc_ff, {chain.back()});
    }
    chains.push_back(std::move(chain));
  }

  // ---- distribution: input buffers -> chain heads ----------------------------
  std::vector<CellId> dist_leaves =
      build_distribution_tree(g, in_bufs, num_chains, cfg.tree_fanout);
  for (int c = 0; c < num_chains; ++c) {
    const CellId stage = g.ff();
    g.wire(dist_leaves[static_cast<size_t>(c)], {stage});
    g.wire(stage, {chains[static_cast<size_t>(c)].front()});
    // Some PEs tap a line buffer directly (stride-1 window reuse), giving
    // datapath heads the BRAM affinity control DSPs also show.
    if (g.rng.uniform() < 0.22)
      g.wire(in_bufs[static_cast<size_t>(c) % in_bufs.size()],
             {chains[static_cast<size_t>(c)].front()});
  }

  // ---- weights: weight BRAM -> LUTRAM FIFO -> per-DSP weight registers -------
  // A slice of the LUTRAM budget forms the FIFOs; the rest is consumed by the
  // filler below.
  int fifo_lutram = std::max(num_chains, g.budget.lutram / 2);
  size_t wb = 0;
  for (int c = 0; c < num_chains; ++c) {
    const CellId fifo = g.lutram();
    --fifo_lutram;
    g.wire(w_bufs[wb % w_bufs.size()], {fifo});
    ++wb;
    std::vector<CellId> weight_regs;
    for (CellId d : chains[static_cast<size_t>(c)]) {
      const CellId wr = g.ff();
      weight_regs.push_back(wr);
      g.wire(wr, {d});
    }
    g.wire(fifo, std::move(weight_regs));
  }

  // ---- PU-internal dataflow (paper Fig. 1(b)): PEs of one processing unit
  // pass partial sums tail -> next chain head through a fabric adder, and
  // forward activations head -> next head through a pipeline register. This
  // gives the datapath DSP graph its ladder topology — the structure the
  // PS->PL angle constraint (6) orders during placement.
  for (int c = 0; c + 1 < num_chains; ++c) {
    if ((c + 1) % cfg.pes_per_pu == 0) continue;  // PU boundary
    const CellId psum = g.carry();
    g.wire(chains[static_cast<size_t>(c)].back(), {psum});
    g.wire(psum, {chains[static_cast<size_t>(c + 1)].front()});
    const CellId act = g.ff();
    g.wire(chains[static_cast<size_t>(c)].front(), {act});
    g.wire(act, {chains[static_cast<size_t>(c + 1)].front()});
  }

  // ---- accumulation: PU-final chain tail -> carry adder -> PU output reg -----
  std::vector<CellId> pe_outputs;
  for (int c = 0; c < num_chains; ++c) {
    const bool pu_final = ((c + 1) % cfg.pes_per_pu == 0) || c + 1 == num_chains;
    if (!pu_final) continue;
    auto& chain = chains[static_cast<size_t>(c)];
    const CellId c1 = g.carry();
    const CellId c2 = g.carry();
    const CellId sum = g.lut();
    const CellId out = g.ff();
    g.wire(chain.back(), {c1});
    g.wire(c1, {c2});
    g.wire(c2, {sum});
    g.wire(sum, {out});
    pe_outputs.push_back(out);
  }

  // ---- collection tree -> output buffers -> PS -------------------------------
  const CellId collected = build_collection_tree(g, pe_outputs, cfg.tree_fanout);
  g.wire(collected, {out_bufs});
  for (size_t b = 0; b < out_bufs.size(); ++b) {
    const CellId l = g.lut();
    const CellId f = g.ff();
    g.wire(out_bufs[b], {l});
    g.wire(l, {f});
    g.wire(f, {ps_out[b % ps_out.size()]});
  }

  // ---- control DSP address generators -----------------------------------------
  const std::vector<CellId>& counter_bits = counter_bits_forward;
  // Control DSPs (address generators). Roughly a third arrive as cascaded
  // PAIRS (two-stage address arithmetic macros), so "has a DSP neighbour /
  // sits in a cascade macro" does not separate the classes locally either —
  // the classifier has to use the global connectivity signal, exactly the
  // regime the paper's Fig. 7(a) compares PADE's local features against.
  std::vector<CellId> control_list;
  while (static_cast<int>(control_list.size()) < control_dsps) {
    const bool make_pair =
        g.rng.uniform() < 0.35 &&
        static_cast<int>(control_list.size()) + 2 <= control_dsps;
    std::vector<CellId> unit;
    unit.push_back(g.dsp_cell(DspRole::kControl));
    if (make_pair) {
      unit.push_back(g.dsp_cell(DspRole::kControl));
      g.nl.add_cascade_chain(unit);
      g.wire(unit[0], {unit[1]});
    }
    for (CellId d : unit) control_list.push_back(d);
    const CellId d = unit.front();
    const CellId tail = unit.back();
    // Inputs from the FSM, and often an offset from the header-parsing LUT
    // tree (mirrors the datapath heads' distribution-tree inputs).
    g.wire(counter_bits[g.rng.index(counter_bits.size())], {d});
    g.wire(counter_bits[g.rng.index(counter_bits.size())], {d});
    if (g.rng.uniform() < 0.5 && !dist_leaves.empty())
      g.wire(dist_leaves[g.rng.index(dist_leaves.size())], {d});
    // Address post-adder (CARRY + LUT), mirroring the PE accumulators.
    if (g.rng.uniform() < 0.5) {
      const CellId ca = g.carry();
      const CellId cl = g.lut();
      g.wire(tail, {ca});
      g.wire(ca, {cl});
    }
    // Address fanout: registers feeding BRAM address ports (the
    // storage-heavy signature of control DSPs). Counts vary so degree alone
    // is not a giveaway.
    std::vector<CellId> addr_regs;
    const int num_addr = 1 + static_cast<int>(g.rng.index(3));
    for (int a = 0; a < num_addr; ++a) addr_regs.push_back(g.ff());
    g.wire(tail, addr_regs);
    for (CellId ar : addr_regs) {
      std::vector<CellId> mem_sinks;
      const int fan = 1 + static_cast<int>(g.rng.index(4));
      for (int m = 0; m < fan; ++m) {
        const size_t pick = g.rng.index(in_bufs.size() + w_bufs.size());
        mem_sinks.push_back(pick < in_bufs.size() ? in_bufs[pick]
                                                  : w_bufs[pick - in_bufs.size()]);
      }
      // Mode/select lines into the PEs: control DSPs also have DSPs in
      // their 2-hop neighbourhood, like datapath DSPs do.
      if (g.rng.uniform() < 0.4 && !chains.empty())
        mem_sinks.push_back(chains[g.rng.index(chains.size())].front());
      g.wire(ar, std::move(mem_sinks));
    }
    // Feedback: DSP -> FF -> LUT -> DSP (control loop). A fraction of
    // control DSPs skip the loop (feed-forward address sweeps).
    if (!(g.rng.uniform() < 0.25)) {
      const CellId fb_ff = g.ff();
      const CellId fb_lut = g.lut();
      g.wire(tail, {fb_ff});
      g.wire(fb_ff, {fb_lut});
      g.wire(fb_lut, {d});
    }
  }

  // ---- LUTRAM filler FIFOs ----------------------------------------------------
  // Remaining LUTRAM becomes deeper weight FIFOs chained off the existing
  // memory path (keeps the graph connected and storage near weights).
  size_t chain_idx = 0;
  while (g.budget.lutram > 0) {
    const CellId fifo = g.lutram();
    const CellId drain = g.ff();
    g.wire(w_bufs[chain_idx % w_bufs.size()], {fifo});
    g.wire(fifo, {drain});
    g.wire(drain, {chains[chain_idx % chains.size()].front()});
    ++chain_idx;
  }

  // ---- LUT/FF filler: pipelined windowing logic per PE -------------------------
  // Long serpentine LUT->FF pipelines rooted at the distribution leaves;
  // this is where the bulk of a real conv kernel's windowing/shift logic
  // lives. Serpentines are chains of 2-pin nets, so they are local by
  // construction (like real shift registers) and register every other
  // stage, keeping combinational paths to one LUT per wire hop.
  size_t attach = 0;
  constexpr int kSerpentineStages = 48;
  while (g.budget.lut > 0 || g.budget.ff > 0) {
    CellId prev = dist_leaves[attach % dist_leaves.size()];
    for (int st = 0; st < kSerpentineStages && (g.budget.lut > 0 || g.budget.ff > 0);
         ++st) {
      if (g.budget.lut > 0) {
        const CellId l = g.lut();
        g.wire(prev, {l});
        prev = l;
      }
      if (g.budget.ff > 0) {
        const CellId f = g.ff();
        g.wire(prev, {f});
        prev = f;
      }
    }
    ++attach;  // tail FF stays unloaded: a pipeline endpoint
  }

  LOG_DEBUG("cnn_gen", "%s: %d cells %d nets %d chains", cfg.name.c_str(),
            g.nl.num_cells(), g.nl.num_nets(), g.nl.num_chains());
  return std::move(g.nl);
}

}  // namespace dsp
