#include "designs/benchmarks.hpp"

#include <cstdlib>
#include <stdexcept>

namespace dsp {
namespace {

CnnGenConfig spec(const char* name, int dsps, int ctrl, int chain_len, int bram,
                  int lutram, int lut, int ff, double freq, uint64_t seed) {
  CnnGenConfig c;
  c.name = name;
  c.total_dsps = dsps;
  c.control_dsps = ctrl;
  c.chain_len = chain_len;
  c.num_bram = bram;
  c.num_lutram = lutram;
  c.num_lut = lut;
  c.num_ff = ff;
  c.target_freq_mhz = freq;
  c.seed = seed;
  return c;
}

std::vector<BenchmarkSpec> build_suite() {
  // Columns follow Table I: #LUT, #LUTRAM, #FF, #BRAM, #DSP, freq(MHz).
  std::vector<BenchmarkSpec> v;
  v.push_back({"iSmartDNN", spec("iSmartDNN", 197, 15, 9, 122, 2919, 53503, 55767, 130.0, 11), 130.0});
  v.push_back({"SkyNet", spec("SkyNet", 346, 16, 8, 192, 2748, 43146, 51410, 150.0, 12), 150.0});
  v.push_back({"SkrSkr-1", spec("SkrSkr-1", 642, 20, 7, 196, 3611, 35743, 53887, 195.0, 13), 195.0});
  v.push_back({"SkrSkr-2", spec("SkrSkr-2", 1180, 24, 9, 196, 3815, 70558, 64007, 175.0, 14), 175.0});
  v.push_back({"SkrSkr-3", spec("SkrSkr-3", 1431, 27, 9, 196, 3791, 70382, 67257, 175.0, 15), 175.0});
  return v;
}

}  // namespace

const std::vector<BenchmarkSpec>& benchmark_suite() {
  static const std::vector<BenchmarkSpec> suite = build_suite();
  return suite;
}

const BenchmarkSpec& benchmark_by_name(const std::string& name) {
  for (const auto& b : benchmark_suite())
    if (b.name == name) return b;
  throw std::out_of_range("unknown benchmark: " + name);
}

Netlist make_benchmark(const BenchmarkSpec& spec_in, const Device& dev, double scale) {
  CnnGenConfig cfg = spec_in.config;
  cfg.scale = scale;
  cfg.ps_top_ports = dev.ps().top_ports;
  cfg.ps_right_ports = dev.ps().right_ports;
  return generate_cnn_accelerator(cfg);
}

double bench_scale_from_env(double fallback) {
  if (const char* env = std::getenv("DSPLACER_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return fallback;
}

}  // namespace dsp
