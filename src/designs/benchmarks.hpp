// The five evaluation benchmarks of the paper (Table I), regenerated as
// synthetic CNN accelerators with matching resource budgets and target
// frequencies. `scale` shrinks design and device proportionally so the
// whole Table II pipeline runs in minutes on a laptop (DSPLACER_SCALE=1
// reproduces paper-size instances).
#pragma once

#include <string>
#include <vector>

#include "designs/cnn_gen.hpp"
#include "fpga/device.hpp"
#include "netlist/netlist.hpp"

namespace dsp {

struct BenchmarkSpec {
  std::string name;
  CnnGenConfig config;     // unscaled targets (Table I row)
  double target_freq_mhz;  // the frequency the paper pushed each design to
};

/// All five Table I benchmarks: iSmartDNN, SkyNet, SkrSkr-1/2/3.
const std::vector<BenchmarkSpec>& benchmark_suite();

/// Spec by name; throws std::out_of_range for unknown names.
const BenchmarkSpec& benchmark_by_name(const std::string& name);

/// Generates the netlist for `spec` at `scale`, pinning PS ports to the
/// geometry of `dev`.
Netlist make_benchmark(const BenchmarkSpec& spec, const Device& dev, double scale = 1.0);

/// Reads DSPLACER_SCALE from the environment (default `fallback`).
double bench_scale_from_env(double fallback = 0.25);

}  // namespace dsp
